"""TC-Join and the Theorem-1/Theorem-2 correctness invariants.

These are the paper's core claims, tested directly:

* **Theorem 1** — joining each updated object over ``[t_u, t_u + T_M]``
  and unioning the results answers the continuous query exactly, at
  every timestamp, provided every object updates within ``T_M``.
* **Theorem 2** — the same holds with the tighter per-bucket horizon
  ``[t_u, lut(otherset) + T_M]``.
"""

import random

import pytest

from repro.core import JoinResultStore
from repro.index import MTBTree, TPRStarTree, TreeStorage
from repro.join import (
    JoinTechniques,
    JoinTriple,
    brute_force_join,
    brute_force_pairs_at,
    mtb_join,
    mtb_join_object,
    tc_join,
)

from ..conftest import random_object, random_objects


def norm(triples):
    return sorted((a, b, round(iv.start, 6), round(iv.end, 6)) for a, b, iv in triples)


class TestTCJoin:
    def test_matches_bruteforce_window(self):
        storage = TreeStorage()
        tree_a = TPRStarTree(storage=storage)
        tree_b = TPRStarTree(storage=storage)
        objs_a = random_objects(40, 200)
        objs_b = random_objects(41, 200, id_offset=100000)
        for o in objs_a:
            tree_a.insert(o, 0.0)
        for o in objs_b:
            tree_b.insert(o, 0.0)
        t_m = 60.0
        got_plain = norm(tc_join(tree_a, tree_b, 0.0, t_m))
        got_improved = norm(tc_join(tree_a, tree_b, 0.0, t_m, JoinTechniques.all()))
        want = norm(brute_force_join(objs_a, objs_b, 0.0, t_m))
        assert got_plain == want
        assert got_improved == want

    def test_invalid_tm(self):
        storage = TreeStorage()
        tree = TPRStarTree(storage=storage)
        with pytest.raises(ValueError):
            tc_join(tree, tree, 0.0, 0.0)


class TestTheorem1:
    def test_union_of_constrained_joins_is_continuously_correct(self):
        """Simulate updates; re-join each updated object over
        [t_u, t_u + T_M] only; the union must equal brute force at every
        timestamp."""
        rng = random.Random(77)
        t_m = 12.0
        objs_a = {o.oid: o for o in random_objects(50, 60, max_speed=4.0)}
        objs_b = {o.oid: o for o in random_objects(51, 60, id_offset=100000, max_speed=4.0)}
        store = JoinResultStore()
        for triple in brute_force_join(objs_a.values(), objs_b.values(), 0.0, t_m):
            store.add(triple)
        next_due = {
            oid: rng.uniform(1, t_m) for oid in list(objs_a) + list(objs_b)
        }
        for step in range(1, 40):
            t = float(step)
            for oid, due in list(next_due.items()):
                if due > t:
                    continue
                side = objs_a if oid in objs_a else objs_b
                obj = random_object(
                    rng, oid, t_ref=t, max_speed=4.0
                )
                side[oid] = obj
                next_due[oid] = t + rng.uniform(1, t_m)
                store.remove_object(oid)
                # Theorem-1 window join of the updated object only.
                if oid in objs_a:
                    fresh = brute_force_join([obj], objs_b.values(), t, t + t_m)
                else:
                    fresh = [
                        JoinTriple(a, obj.oid, iv)
                        for _o, a, iv in brute_force_join(
                            [obj], objs_a.values(), t, t + t_m
                        )
                    ]
                for triple in fresh:
                    store.add(triple)
            got = store.pairs_at(t)
            want = brute_force_pairs_at(objs_a.values(), objs_b.values(), t)
            assert got == want, (step, got ^ want)


class TestTheorem2:
    def test_mtb_forest_join_horizons(self):
        """mtb_join's per-bucket-pair windows cover exactly
        [t, min(bucket ends) + T_M] for every pair."""
        storage = TreeStorage()
        t_m = 20.0
        forest_a = MTBTree(t_m=t_m, storage=storage)
        forest_b = MTBTree(t_m=t_m, storage=storage)
        objs_a = random_objects(60, 150)
        objs_b = random_objects(61, 150, id_offset=100000)
        for o in objs_a:
            forest_a.insert(o, 0.0)
        for o in objs_b:
            forest_b.insert(o, 0.0)
        # Single bucket [0, 10): horizon = 10 + 20 = 30.
        got = norm(mtb_join(forest_a, forest_b, 0.0, JoinTechniques.all()))
        want = norm(brute_force_join(objs_a, objs_b, 0.0, 30.0))
        assert got == want

    def test_mtb_join_object_per_bucket_horizon(self):
        storage = TreeStorage()
        t_m = 20.0
        forest = MTBTree(t_m=t_m, storage=storage)
        old = random_objects(70, 80, t_ref=5.0)       # bucket [0,10) → horizon 30
        new = random_objects(71, 80, id_offset=5000, t_ref=15.0)  # bucket [10,20) → 40
        for o in old:
            forest.insert(o, 5.0)
        for o in new:
            forest.insert(o, 15.0)
        probe = random_object(random.Random(5), 99999, t_ref=16.0)
        got = sorted(
            (t.b_oid, round(t.interval.start, 6))
            for t in mtb_join_object(forest, probe.kbox, probe.oid, 16.0)
        )
        want = sorted(
            [(t.b_oid, round(t.interval.start, 6))
             for t in brute_force_join([probe], old, 16.0, 30.0)]
            + [(t.b_oid, round(t.interval.start, 6))
               for t in brute_force_join([probe], new, 16.0, 40.0)]
        )
        assert got == want

    def test_mismatched_tm_rejected(self):
        storage = TreeStorage()
        fa = MTBTree(t_m=10.0, storage=storage)
        fb = MTBTree(t_m=20.0, storage=storage)
        with pytest.raises(ValueError):
            mtb_join(fa, fb, 0.0)

    def test_drained_bucket_skipped(self):
        storage = TreeStorage()
        forest = MTBTree(t_m=10.0, storage=storage)
        for o in random_objects(80, 30, t_ref=2.0):
            forest.insert(o, 2.0)
        probe = random_object(random.Random(9), 77777, t_ref=40.0)
        # Bucket [0,5) horizon ends at 15 < t_now=40 → nothing to probe.
        assert mtb_join_object(forest, probe.kbox, probe.oid, 40.0) == []
