"""TP-Join: current pairs, expiry time, and influence scans."""

import random

import pytest

from repro.geometry import INF, intersection_interval
from repro.index import TPRStarTree, TreeStorage
from repro.join import brute_force_pairs_at, influence_scan, tp_join

from ..conftest import random_object, random_objects


def build_pair(n, seed, max_speed=3.0):
    storage = TreeStorage()
    tree_a = TPRStarTree(storage=storage)
    tree_b = TPRStarTree(storage=storage)
    objs_a = random_objects(seed, n, max_speed=max_speed)
    objs_b = random_objects(seed + 1, n, id_offset=100000, max_speed=max_speed)
    for o in objs_a:
        tree_a.insert(o, 0.0)
    for o in objs_b:
        tree_b.insert(o, 0.0)
    return tree_a, tree_b, objs_a, objs_b


def brute_expiry(objs_a, objs_b, t_now):
    """Earliest strictly-future result-change time and its events."""
    best = INF
    events = []
    for a in objs_a:
        for b in objs_b:
            iv = intersection_interval(a.kbox, b.kbox, t_now, INF)
            if iv is None:
                continue
            if iv.start <= t_now:
                if t_now < iv.end < INF:
                    time, event = iv.end, (a.oid, b.oid, False)
                else:
                    continue
            else:
                time, event = iv.start, (a.oid, b.oid, True)
            if time < best:
                best, events = time, [event]
            elif time == best:
                events.append(event)
    return best, events


class TestTPJoin:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_current_pairs_match_bruteforce(self, seed):
        tree_a, tree_b, objs_a, objs_b = build_pair(150, seed=seed * 50)
        answer = tp_join(tree_a, tree_b, 0.0)
        assert answer.pairs == brute_force_pairs_at(objs_a, objs_b, 0.0)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_expiry_and_events_match_bruteforce(self, seed):
        tree_a, tree_b, objs_a, objs_b = build_pair(120, seed=seed * 91)
        answer = tp_join(tree_a, tree_b, 0.0)
        want_expiry, want_events = brute_expiry(objs_a, objs_b, 0.0)
        assert answer.expiry == pytest.approx(want_expiry)
        assert sorted(answer.events) == sorted(want_events)

    def test_later_timestamp(self):
        tree_a, tree_b, objs_a, objs_b = build_pair(120, seed=777)
        t = 13.5
        answer = tp_join(tree_a, tree_b, t)
        assert answer.pairs == brute_force_pairs_at(objs_a, objs_b, t)
        want_expiry, _ = brute_expiry(objs_a, objs_b, t)
        assert answer.expiry == pytest.approx(want_expiry)
        assert answer.expiry > t

    def test_empty_trees(self):
        storage = TreeStorage()
        tree_a = TPRStarTree(storage=storage)
        tree_b = TPRStarTree(storage=storage)
        answer = tp_join(tree_a, tree_b, 0.0)
        assert answer.pairs == set()
        assert answer.expiry == INF
        assert answer.events == []

    def test_prunes_versus_naive(self):
        """TP-Join should test far fewer pairs than the full traversal —
        that is its raison d'être."""
        tree_a, tree_b, objs_a, objs_b = build_pair(400, seed=5)
        tracker = tree_a.storage.tracker
        tracker.reset()
        tp_join(tree_a, tree_b, 0.0)
        tp_tests = tracker.pair_tests
        from repro.join import naive_join

        tracker.reset()
        naive_join(tree_a, tree_b, 0.0)
        naive_tests = tracker.pair_tests
        assert tp_tests < naive_tests / 2


class TestInfluenceScan:
    def test_partners_and_influence(self):
        tree_a, _tree_b, objs_a, _objs_b = build_pair(150, seed=31)
        probe = random_object(random.Random(8), 999999, t_ref=0.0)
        triples, min_inf = influence_scan(tree_a, probe.kbox, 0.0)
        # Oracle
        want = []
        want_inf = INF
        for a in objs_a:
            iv = intersection_interval(a.kbox, probe.kbox, 0.0, INF)
            if iv is None:
                continue
            want.append((a.oid, round(iv.start, 6)))
            if iv.start > 0.0:
                want_inf = min(want_inf, iv.start)
            elif 0.0 < iv.end < INF:
                want_inf = min(want_inf, iv.end)
        got = sorted((t.b_oid, round(t.interval.start, 6)) for t in triples)
        assert got == sorted(want)
        if want_inf == INF:
            assert min_inf == INF
        else:
            assert min_inf == pytest.approx(want_inf)
