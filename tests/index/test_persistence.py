"""Whole-tree save/load round-trips."""

import random

import pytest

from repro.geometry import Box, KineticBox, intersection_interval
from repro.index import TPRStarTree, TPRTree, load_tree, save_tree

from ..conftest import random_object, random_objects


def build(n=300, seed=12, **kwargs):
    tree = TPRStarTree(**kwargs)
    objects = random_objects(seed, n)
    for obj in objects:
        tree.insert(obj, 0.0)
    return tree, objects


class TestSaveLoad:
    def test_roundtrip_counts_and_invariants(self, tmp_path):
        tree, _objects = build()
        path = str(tmp_path / "tree.db")
        save_tree(tree, path)
        loaded = load_tree(path)
        assert len(loaded) == len(tree)
        assert loaded.height == tree.height
        assert loaded.node_capacity == tree.node_capacity
        assert loaded.horizon == tree.horizon
        loaded.validate(0.0)

    def test_search_identical(self, tmp_path):
        tree, objects = build(seed=13)
        path = str(tmp_path / "tree.db")
        save_tree(tree, path)
        loaded = load_tree(path)
        region = KineticBox.rigid(Box(100, 500, 200, 700), 1.0, -0.5, 0.0)
        got = sorted(loaded.search(region, 0.0, 50.0))
        want = sorted(tree.search(region, 0.0, 50.0))
        assert [g[0] for g in got] == [w[0] for w in want]
        oracle = {
            o.oid
            for o in objects
            if intersection_interval(o.kbox, region, 0.0, 50.0) is not None
        }
        assert {g[0] for g in got} == oracle

    def test_loaded_tree_supports_updates(self, tmp_path):
        tree, objects = build(n=150, seed=14)
        path = str(tmp_path / "tree.db")
        save_tree(tree, path)
        loaded = load_tree(path)
        rng = random.Random(5)
        by_id = {o.oid: o for o in objects}
        for oid in rng.sample(sorted(by_id), 60):
            newer = by_id[oid].updated(3.0)
            loaded.update(newer, 3.0)
        for oid in rng.sample(sorted(by_id), 30):
            loaded.delete(oid, 4.0)
        new_obj = random_object(rng, 999999, t_ref=4.0)
        loaded.insert(new_obj, 4.0)
        loaded.validate(4.0)
        assert loaded.guided_delete_misses == 0

    def test_empty_tree(self, tmp_path):
        tree = TPRStarTree()
        path = str(tmp_path / "empty.db")
        save_tree(tree, path)
        loaded = load_tree(path)
        assert len(loaded) == 0
        assert loaded.height == 1

    def test_overwrite_existing_file(self, tmp_path):
        path = str(tmp_path / "tree.db")
        tree1, _ = build(n=50, seed=1)
        save_tree(tree1, path)
        tree2, _ = build(n=120, seed=2)
        save_tree(tree2, path)
        assert len(load_tree(path)) == 120

    def test_wrong_file_rejected(self, tmp_path):
        from repro.storage import FileDiskManager

        path = str(tmp_path / "other.db")
        disk = FileDiskManager(path)
        disk.allocate()
        disk.write_page(0, b"\x00" * 64)
        disk.close()
        with pytest.raises(ValueError):
            load_tree(path)

    def test_custom_tree_class(self, tmp_path):
        tree, _ = build(n=40, seed=3)
        path = str(tmp_path / "tree.db")
        save_tree(tree, path)
        loaded = load_tree(path, tree_class=TPRTree)
        assert type(loaded) is TPRTree
        loaded.validate(0.0)

    def test_forest_roundtrip(self, tmp_path):
        from repro.index import MTBTree, load_forest, save_forest

        forest = MTBTree(t_m=20.0)
        objects = random_objects(21, 120)
        for obj in objects[:70]:
            forest.insert(obj, 0.0)
        for obj in objects[70:]:
            aged = obj.updated(15.0)
            forest.insert(aged, 15.0)
        directory = str(tmp_path / "forest")
        save_forest(forest, directory)
        loaded = load_forest(directory)
        assert len(loaded) == len(forest)
        assert loaded.num_buckets == forest.num_buckets
        assert loaded.t_m == forest.t_m
        loaded.validate(15.0)
        # The loaded forest remains maintainable.
        fresh = objects[0].updated(16.0)
        loaded.update(fresh, 16.0)
        assert loaded.objects.get(fresh.oid).t_ref == 16.0

    def test_multi_page_object_table(self, tmp_path):
        """>50 objects per page forces the object chain to span pages."""
        tree, _ = build(n=200, seed=4)
        path = str(tmp_path / "tree.db")
        save_tree(tree, path)
        loaded = load_tree(path)
        assert sorted(o.oid for o in loaded.all_objects()) == sorted(
            o.oid for o in tree.all_objects()
        )
