"""Tests for node serialization and page-capacity arithmetic."""

import random

from repro.geometry import Box, KineticBox
from repro.index import (
    ENTRY_BYTES,
    HEADER_BYTES,
    Entry,
    Node,
    NodeCodec,
    max_entries_for_page,
)
from repro.storage import DEFAULT_PAGE_SIZE

from ..conftest import random_kbox


class TestCapacityArithmetic:
    def test_entry_bytes(self):
        # ref (i64) + 9 doubles of kinetic-box parameters.
        assert ENTRY_BYTES == 8 + 72

    def test_default_page_fits_paper_capacity(self):
        # Table I uses node capacity 30; a 4 KiB page must hold it.
        assert max_entries_for_page(DEFAULT_PAGE_SIZE) >= 30

    def test_capacity_formula(self):
        assert max_entries_for_page(HEADER_BYTES + 3 * ENTRY_BYTES) == 3
        assert max_entries_for_page(HEADER_BYTES + 3 * ENTRY_BYTES - 1) == 2


class TestRoundTrip:
    def test_empty_leaf(self):
        codec = NodeCodec()
        node = Node(5, 0)
        decoded = codec.decode(codec.encode(node))
        assert decoded.page_id == 5
        assert decoded.level == 0
        assert decoded.entries == []

    def test_random_nodes(self):
        rng = random.Random(31)
        codec = NodeCodec()
        for _ in range(50):
            level = rng.randint(0, 3)
            entries = [
                Entry(random_kbox(rng), rng.randint(0, 10**9))
                for _ in range(rng.randint(0, 30))
            ]
            node = Node(rng.randint(0, 1000), level, entries)
            data = codec.encode(node)
            assert len(data) <= DEFAULT_PAGE_SIZE
            decoded = codec.decode(data)
            assert decoded.page_id == node.page_id
            assert decoded.level == node.level
            assert decoded.entries == node.entries

    def test_full_node_fits_page(self):
        rng = random.Random(1)
        codec = NodeCodec()
        capacity = max_entries_for_page(DEFAULT_PAGE_SIZE)
        node = Node(0, 2, [Entry(random_kbox(rng), i) for i in range(capacity)])
        assert len(codec.encode(node)) <= DEFAULT_PAGE_SIZE


class TestNode:
    def test_bound_at_unions_entries(self):
        e1 = Entry(KineticBox.rigid(Box(0, 1, 0, 1), 1, 0, 0.0), 1)
        e2 = Entry(KineticBox.rigid(Box(5, 6, 2, 3), -1, 0, 0.0), 2)
        node = Node(0, 0, [e1, e2])
        bound = node.bound_at(0.0)
        assert bound.at(0.0).contains(Box(0, 6, 0, 3))
        # At t=2 the boxes have swapped direction-wise; still bounded.
        for t in (0.0, 1.0, 2.0, 5.0):
            assert bound.at(t).contains(e1.kbox.at(t))
            assert bound.at(t).contains(e2.kbox.at(t))

    def test_bound_at_empty_raises(self):
        import pytest

        with pytest.raises(ValueError):
            Node(0, 0).bound_at(0.0)

    def test_find_ref(self):
        e1 = Entry(KineticBox.rigid(Box(0, 1, 0, 1), 0, 0, 0.0), 11)
        node = Node(0, 0, [e1])
        assert node.find_ref(11) == 0
        assert node.find_ref(99) is None
