"""Bulk loading: packed trees must be indistinguishable in behaviour."""

import random

import pytest

from repro.geometry import Box, KineticBox, intersection_interval
from repro.index import TPRTree, TPRStarTree, bulk_load, collect_tree_stats
from repro.workloads import uniform_workload

from ..conftest import random_objects


class TestBulkLoad:
    def test_empty(self):
        tree = bulk_load([], t0=0.0)
        assert len(tree) == 0
        assert tree.height == 1

    def test_single_node_worth(self):
        objs = random_objects(1, 10)
        tree = bulk_load(objs, t0=0.0)
        assert len(tree) == 10
        assert tree.height == 1
        tree.validate(0.0)

    @pytest.mark.parametrize("n", [31, 100, 500, 2000])
    def test_invariants_at_scale(self, n):
        objs = random_objects(2, n)
        tree = bulk_load(objs, t0=0.0)
        assert len(tree) == n
        tree.validate(0.0)

    def test_duplicate_ids_rejected(self):
        objs = random_objects(3, 5)
        with pytest.raises(ValueError):
            bulk_load(objs + [objs[0]], t0=0.0)

    def test_fill_factor_validation(self):
        with pytest.raises(ValueError):
            bulk_load(random_objects(4, 10), t0=0.0, fill_factor=0.05)

    def test_search_equivalent_to_insert_built(self):
        objs = random_objects(5, 600)
        packed = bulk_load(objs, t0=0.0)
        built = TPRStarTree()
        for obj in objs:
            built.insert(obj, 0.0)
        region = KineticBox.rigid(Box(200, 500, 300, 600), 0.8, -0.3, 0.0)
        got = sorted(packed.search(region, 0.0, 40.0))
        want = sorted(built.search(region, 0.0, 40.0))
        assert [g[0] for g in got] == [w[0] for w in want]

    def test_supports_updates_after_load(self):
        objs = random_objects(6, 300)
        tree = bulk_load(objs, t0=0.0)
        rng = random.Random(0)
        by_id = {o.oid: o for o in objs}
        for oid in rng.sample(sorted(by_id), 100):
            newer = by_id[oid].updated(5.0)
            tree.update(newer, 5.0)
            by_id[oid] = newer
        for oid in rng.sample(sorted(by_id), 50):
            tree.delete(oid, 6.0)
            del by_id[oid]
        tree.validate(6.0)
        assert len(tree) == 250

    def test_packing_quality(self):
        """STR packing should fill leaves near the fill factor."""
        scenario = uniform_workload(1000, seed=8)
        tree = bulk_load(scenario.set_a, t0=0.0, fill_factor=0.8)
        stats = collect_tree_stats(tree, 0.0)
        assert stats.avg_leaf_fill > 0.6

    def test_custom_tree_class(self):
        tree = bulk_load(random_objects(7, 50), t0=0.0, tree_class=TPRTree)
        assert type(tree) is TPRTree
        tree.validate(0.0)

    def test_bounds_valid_into_future(self):
        objs = random_objects(9, 400, max_speed=5.0)
        tree = bulk_load(objs, t0=0.0, horizon=30.0)
        # Every object must be findable via a search far in the future.
        for obj in objs[::37]:
            region = obj.kbox
            hits = {oid for oid, _ in tree.search(region, 0.0, 90.0)}
            assert obj.oid in hits
