"""Batched maintenance (insert_batch / delete_batch / bulk_delete).

The batch paths may build a *different tree shape* than the sequential
loops (routing decisions are taken against pre-batch bounds, underflow
against batch-final occupancy), but tree contents, every structural
invariant, and every search answer must be identical — that is the
shape-independence contract the group-commit engine relies on.
"""

import random

import pytest

from repro.geometry import Box, INF, KineticBox, intersection_interval, kernels
from repro.index import MTBTree, TPRStarTree, TPRTree
from repro.objects import MovingObject

from ..conftest import random_object

TREES = [TPRTree, TPRStarTree]


def make_objects(rng, n, t=0.0, base=0):
    return [random_object(rng, base + i, t_ref=t) for i in range(n)]


def answers(tree, rng, t=0.0, trials=8):
    """Search answers over random probe regions (shape-independent)."""
    out = []
    for _ in range(trials):
        x, y = rng.uniform(0, 900), rng.uniform(0, 900)
        region = KineticBox.rigid(
            Box(x, x + 150, y, y + 150),
            rng.uniform(-2, 2), rng.uniform(-2, 2), t,
        )
        out.append(
            sorted(
                (oid, round(iv.start, 9), round(min(iv.end, 1e9), 9))
                for oid, iv in tree.search(region, t, t + 30.0)
            )
        )
    return out


class TestInsertBatch:
    @pytest.mark.parametrize("cls", TREES)
    def test_matches_sequential_inserts(self, cls):
        rng = random.Random(11)
        objs = make_objects(rng, 300)
        seq, bat = cls(node_capacity=10), cls(node_capacity=10)
        for obj in objs:
            seq.insert(obj, 0.0)
        bat.insert_batch(objs, 0.0)
        bat.validate(0.0)
        assert len(bat) == len(seq) == 300
        probe_rng = random.Random(99)
        assert answers(bat, random.Random(99)) == answers(seq, probe_rng)

    @pytest.mark.parametrize("cls", TREES)
    def test_incremental_batches_under_churn(self, cls):
        rng = random.Random(12)
        tree = cls(node_capacity=8)
        tree.insert_batch(make_objects(rng, 120), 0.0)
        t = 0.0
        for round_no in range(5):
            t += 3.0
            tree.insert_batch(make_objects(rng, 25, t=t, base=1000 + 100 * round_no), t)
            tree.validate(t)
        assert len(tree) == 120 + 5 * 25

    def test_small_batch_uses_scalar_path(self):
        tree = TPRStarTree()
        rng = random.Random(13)
        tree.insert_batch(make_objects(rng, 2), 0.0)  # below INSERT_BATCH_MIN
        tree.validate(0.0)
        assert len(tree) == 2

    def test_duplicates_rejected(self):
        tree = TPRStarTree()
        obj = MovingObject(1, Box(0, 1, 0, 1), 0, 0, 0.0)
        tree.insert(obj, 0.0)
        with pytest.raises(ValueError):
            tree.insert_batch([MovingObject(2, Box(0, 1, 0, 1), 0, 0, 0.0), obj], 0.0)
        dup = MovingObject(3, Box(0, 1, 0, 1), 0, 0, 0.0)
        with pytest.raises(ValueError):
            tree.insert_batch([dup, dup], 0.0)


class TestDeleteBatch:
    @pytest.mark.parametrize("cls", TREES)
    def test_matches_sequential_deletes(self, cls):
        rng = random.Random(21)
        objs = make_objects(rng, 250)
        seq, bat = cls(node_capacity=10), cls(node_capacity=10)
        for obj in objs:
            seq.insert(obj, 0.0)
            bat.insert(obj, 0.0)
        victims = [obj.oid for obj in rng.sample(objs, 90)]
        removed_seq = [seq.delete(oid, 1.0) for oid in victims]
        removed_bat = bat.delete_batch(victims, 1.0)
        assert removed_bat == removed_seq  # same stored versions, in order
        bat.validate(1.0)
        assert len(bat) == len(seq) == 160
        probe_rng = random.Random(77)
        assert answers(bat, random.Random(77), t=1.0) == answers(
            seq, probe_rng, t=1.0
        )
        assert bat.guided_delete_misses == 0

    @pytest.mark.parametrize("cls", TREES)
    def test_delete_everything_in_one_batch(self, cls):
        # Dissolving every subtree at once exercises the root-drain
        # rebuild, a state sequential deletion can never reach.
        rng = random.Random(22)
        objs = make_objects(rng, 180)
        tree = cls(node_capacity=8)
        tree.insert_batch(objs, 0.0)
        tree.delete_batch([obj.oid for obj in objs], 1.0)
        assert len(tree) == 0
        assert tree.height == 1
        tree.validate(1.0)
        tree.insert_batch(make_objects(rng, 40, t=1.0, base=500), 1.0)
        tree.validate(1.0)

    def test_missing_oid_raises(self):
        tree = TPRStarTree()
        rng = random.Random(23)
        tree.insert_batch(make_objects(rng, 20), 0.0)
        with pytest.raises(KeyError):
            tree.delete_batch([0, 1, 9999], 0.0)

    @pytest.mark.parametrize("cls", TREES)
    def test_interleaved_batch_churn(self, cls):
        rng = random.Random(24)
        tree = cls(node_capacity=8)
        live = {}
        for obj in make_objects(rng, 150):
            live[obj.oid] = obj
        tree.insert_batch(list(live.values()), 0.0)
        t = 0.0
        for round_no in range(6):
            t += 2.0
            victims = rng.sample(sorted(live), 40)
            tree.delete_batch(victims, t)
            refreshed = [random_object(rng, oid, t_ref=t) for oid in victims]
            tree.insert_batch(refreshed, t)
            for obj in refreshed:
                live[obj.oid] = obj
            tree.validate(t)
        region = KineticBox.rigid(Box(-1e6, 1e6, -1e6, 1e6), 0, 0, t)
        got = {oid for oid, _ in tree.search(region, t, INF)}
        assert got == set(live)


class TestForestBulkDelete:
    def test_matches_per_object_delete(self):
        rng = random.Random(31)
        seq, bat = MTBTree(t_m=20.0), MTBTree(t_m=20.0)
        objs = []
        for t_ref in (0.0, 7.0, 14.0):  # spread over three buckets
            for obj in make_objects(rng, 40, t=t_ref, base=int(t_ref) * 100):
                objs.append(obj)
        for obj in objs:
            seq.insert(obj, obj.t_ref)
            bat.insert(obj, obj.t_ref)
        victims = [obj.oid for obj in rng.sample(objs, 70)]
        removed_seq = [seq.delete(oid, 15.0) for oid in victims]
        removed_bat = bat.bulk_delete(victims, 15.0)
        assert removed_bat == removed_seq
        assert len(bat) == len(seq)
        assert bat.num_buckets == seq.num_buckets  # drained buckets dropped
        bat.validate(15.0)

    def test_emptied_bucket_is_dropped(self):
        rng = random.Random(32)
        forest = MTBTree(t_m=20.0)
        early = make_objects(rng, 30, t=0.0)
        late = make_objects(rng, 30, t=12.0, base=100)
        for obj in early + late:
            forest.insert(obj, obj.t_ref)
        assert forest.num_buckets == 2
        forest.bulk_delete([obj.oid for obj in early], 12.0)
        assert forest.num_buckets == 1
        forest.validate(12.0)


@pytest.mark.skipif(not kernels.HAVE_NUMPY, reason="requires NumPy")
class TestInsertionCostKernel:
    def test_matches_scalar_integrals(self):
        rng = random.Random(41)
        entries = [random_object(rng, i).kbox for i in range(25)]
        objs = [random_object(rng, 100 + i).kbox for i in range(12)]
        t0, t1 = 2.0, 32.0
        enlargements, areas = kernels.batch_insertion_costs(
            kernels.KineticBatch.from_boxes(entries),
            kernels.KineticBatch.from_boxes(objs),
            t0,
            t1,
        )
        for i, ekb in enumerate(entries):
            want_area = ekb.integrated_area(t0, t1)
            assert areas[i] == pytest.approx(want_area, rel=1e-12)
            for j, okb in enumerate(objs):
                want = ekb.integrated_union_enlargement(okb, t0, t1)
                assert enlargements[i, j] == pytest.approx(
                    want, rel=1e-12, abs=1e-9
                )

    def test_routing_agrees_with_choose_child(self):
        rng = random.Random(42)
        tree = TPRStarTree(node_capacity=8)
        tree.insert_batch(make_objects(rng, 200), 0.0)
        root = tree.read_node(tree.root_id)
        probes = [random_object(rng, 500 + i, t_ref=1.0) for i in range(20)]
        routes = tree._route_batch([p.kbox for p in probes], 1.0)
        for probe, route in zip(probes, routes):
            want = root.entries[tree._choose_child(root, probe.kbox, 1.0)].ref
            assert route[0] == want
