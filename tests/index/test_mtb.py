"""Tests for the MTB-tree time-bucket forest."""

import random

import pytest

from repro.index import MTBTree, TPRTree, TreeStorage
from repro.objects import MovingObject
from repro.geometry import Box

from ..conftest import random_object


def fresh_forest(t_m=60.0, m=2, **kwargs):
    return MTBTree(t_m=t_m, buckets_per_tm=m, **kwargs)


class TestBucketArithmetic:
    def test_bucket_key_and_end(self):
        forest = fresh_forest(t_m=60.0, m=2)  # bucket length 30
        assert forest.bucket_length == 30.0
        assert forest.bucket_key(0.0) == 0
        assert forest.bucket_key(29.999) == 0
        assert forest.bucket_key(30.0) == 1
        assert forest.bucket_end(0) == 30.0
        assert forest.bucket_end(3) == 120.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MTBTree(t_m=0)
        with pytest.raises(ValueError):
            MTBTree(t_m=60, buckets_per_tm=0)


class TestMaintenance:
    def test_insert_goes_to_update_time_bucket(self):
        forest = fresh_forest()
        obj = MovingObject(1, Box(0, 1, 0, 1), 1, 0, t_ref=45.0)
        forest.insert(obj, 45.0)
        keys = [key for key, _end, _tree in forest.trees()]
        assert keys == [forest.bucket_key(45.0)] == [1]

    def test_duplicate_insert_rejected(self):
        forest = fresh_forest()
        obj = MovingObject(1, Box(0, 1, 0, 1), 0, 0, 0.0)
        forest.insert(obj, 0.0)
        with pytest.raises(ValueError):
            forest.insert(obj, 0.0)

    def test_update_moves_bucket(self):
        forest = fresh_forest()
        obj = MovingObject(1, Box(0, 1, 0, 1), 1, 0, t_ref=0.0)
        forest.insert(obj, 0.0)
        newer = obj.updated(40.0)
        forest.update(newer, 40.0)
        keys = [key for key, _end, _tree in forest.trees()]
        assert keys == [1]  # old bucket drained and dropped
        assert forest.objects.tag(1) == 1

    def test_empty_buckets_dropped_and_pages_freed(self):
        storage = TreeStorage()
        forest = fresh_forest(storage=storage)
        rng = random.Random(0)
        for oid in range(50):
            forest.insert(random_object(rng, oid), 0.0)
        pages_full = storage.disk.num_pages
        for oid in range(50):
            forest.delete(oid, 10.0)
        assert forest.num_buckets == 0
        assert storage.disk.num_pages < pages_full

    def test_bounded_bucket_count_under_tm_contract(self):
        """With every object updating within T_M, at most m+1 buckets live."""
        rng = random.Random(1)
        forest = fresh_forest(t_m=20.0, m=2)  # bucket length 10
        objects = {}
        for oid in range(120):
            obj = random_object(rng, oid)
            forest.insert(obj, 0.0)
            objects[oid] = obj
        next_due = {oid: rng.uniform(1, 20) for oid in objects}
        t = 0.0
        for _step in range(80):
            t += 1.0
            for oid, due in list(next_due.items()):
                if due <= t:
                    obj = objects[oid].updated(t)
                    forest.update(obj, t)
                    objects[oid] = obj
                    next_due[oid] = t + rng.uniform(1, 20)
            if t > 20:
                assert forest.num_buckets <= 3, (t, forest.num_buckets)
        forest.validate(t)

    def test_forest_validate_checks_membership(self):
        forest = fresh_forest()
        rng = random.Random(2)
        for oid in range(100):
            forest.insert(random_object(rng, oid), 0.0)
        forest.validate(0.0)

    def test_delete_returns_stored_version(self):
        forest = fresh_forest()
        obj = MovingObject(7, Box(0, 1, 0, 1), 2, 3, 0.0)
        forest.insert(obj, 0.0)
        stored = forest.delete(7, 5.0)
        assert stored == obj
        assert len(forest) == 0


class TestTreeFactory:
    def test_custom_factory_used(self):
        forest = MTBTree(t_m=60.0, tree_factory=TPRTree)
        forest.insert(MovingObject(1, Box(0, 1, 0, 1), 0, 0, 0.0), 0.0)
        _key, _end, tree = next(forest.trees())
        assert type(tree) is TPRTree

    def test_trees_sorted_by_bucket(self):
        forest = fresh_forest(t_m=60.0, m=2)
        forest.insert(MovingObject(1, Box(0, 1, 0, 1), 0, 0, t_ref=40.0), 40.0)
        forest.insert(MovingObject(2, Box(0, 1, 0, 1), 0, 0, t_ref=5.0), 40.0)
        keys = [key for key, _end, _tree in forest.trees()]
        assert keys == sorted(keys) == [0, 1]
