"""Tree statistics collection."""

from repro.index import (
    MTBTree,
    TPRStarTree,
    collect_forest_stats,
    collect_tree_stats,
)
from repro.workloads import uniform_workload

from ..conftest import random_objects


class TestTreeStats:
    def test_counts_consistent(self):
        tree = TPRStarTree()
        objs = random_objects(1, 400)
        for obj in objs:
            tree.insert(obj, 0.0)
        stats = collect_tree_stats(tree, 0.0)
        assert stats.object_count == 400
        assert stats.height == tree.height
        assert stats.leaf_count <= stats.node_count
        # Every entry except the root's is counted once; leaves hold
        # exactly the objects.
        assert stats.entry_count >= 400
        assert stats.avg_fanout > 1.0

    def test_fill_bounds(self):
        tree = TPRStarTree()
        for obj in random_objects(2, 300):
            tree.insert(obj, 0.0)
        stats = collect_tree_stats(tree, 0.0)
        assert 0.0 < stats.avg_leaf_fill <= 1.0
        assert 0.0 <= stats.avg_internal_fill <= 1.0

    def test_single_leaf_tree(self):
        tree = TPRStarTree()
        for obj in random_objects(3, 5):
            tree.insert(obj, 0.0)
        stats = collect_tree_stats(tree, 0.0)
        assert stats.node_count == stats.leaf_count == 1
        assert stats.sibling_overlap_area == 0.0
        assert stats.avg_internal_fill == 0.0

    def test_area_by_level_keys(self):
        tree = TPRStarTree()
        for obj in random_objects(4, 200):
            tree.insert(obj, 0.0)
        stats = collect_tree_stats(tree, 0.0)
        assert set(stats.area_by_level) == set(range(tree.height))

    def test_forest_stats(self):
        forest = MTBTree(t_m=20.0)
        scenario = uniform_workload(100, seed=5, t_m=20.0)
        for obj in scenario.set_a[:50]:
            forest.insert(obj, 0.0)
        for obj in scenario.set_a[50:]:
            forest.insert(obj.updated(15.0), 15.0)
        per_bucket = collect_forest_stats(forest, 15.0)
        assert set(per_bucket) == {0, 1}
        assert sum(s.object_count for s in per_bucket.values()) == 100
