"""Tests for the object table."""

import pytest

from repro.geometry import Box
from repro.index import ObjectTable
from repro.objects import MovingObject


def obj(oid, x=0.0):
    return MovingObject(oid, Box(x, x + 1, 0, 1), 1, 0, 0.0)


class TestObjectTable:
    def test_put_get(self):
        table = ObjectTable()
        table.put(obj(1))
        assert table.get(1).oid == 1
        assert 1 in table
        assert len(table) == 1

    def test_overwrite(self):
        table = ObjectTable()
        table.put(obj(1, x=0.0))
        table.put(obj(1, x=9.0))
        assert table.get(1).kbox.mbr.x_lo == 9.0
        assert len(table) == 1

    def test_tags(self):
        table = ObjectTable()
        table.put(obj(1), tag=4)
        assert table.tag(1) == 4
        table.put(obj(2))
        assert table.tag(2) is None

    def test_pop(self):
        table = ObjectTable()
        table.put(obj(1), tag=7)
        stored, tag = table.pop(1)
        assert stored.oid == 1
        assert tag == 7
        assert 1 not in table
        with pytest.raises(KeyError):
            table.pop(1)

    def test_missing_raises(self):
        table = ObjectTable()
        with pytest.raises(KeyError):
            table.get(5)
        with pytest.raises(KeyError):
            table.tag(5)

    def test_iteration(self):
        table = ObjectTable()
        for i in range(5):
            table.put(obj(i))
        assert sorted(table) == [0, 1, 2, 3, 4]
        assert sorted(o.oid for o in table.objects()) == [0, 1, 2, 3, 4]
