"""Structural and behavioural tests for the TPR-tree (and TPR*)."""

import random

import pytest

from repro.geometry import Box, INF, KineticBox, intersection_interval
from repro.index import TPRStarTree, TPRTree, TreeStorage
from repro.objects import MovingObject

from ..conftest import random_object

TREES = [TPRTree, TPRStarTree]


def build_tree(cls, n, seed=0, t=0.0, **kwargs):
    rng = random.Random(seed)
    tree = cls(**kwargs)
    objects = {}
    for oid in range(n):
        obj = random_object(rng, oid, t_ref=t)
        tree.insert(obj, t)
        objects[oid] = obj
    return tree, objects, rng


class TestConstruction:
    def test_empty_tree(self):
        tree = TPRTree()
        assert len(tree) == 0
        assert tree.height == 1
        assert tree.search(
            KineticBox.rigid(Box(0, 1000, 0, 1000), 0, 0, 0), 0.0
        ) == []

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TPRTree(node_capacity=3)
        with pytest.raises(ValueError):
            TPRTree(node_capacity=1000)  # exceeds 4 KiB page
        with pytest.raises(ValueError):
            TPRTree(horizon=0)
        with pytest.raises(ValueError):
            TPRTree(min_fill_ratio=0.9)

    def test_duplicate_insert_rejected(self):
        tree = TPRTree()
        obj = MovingObject(1, Box(0, 1, 0, 1), 0, 0, 0.0)
        tree.insert(obj, 0.0)
        with pytest.raises(ValueError):
            tree.insert(obj, 0.0)

    @pytest.mark.parametrize("cls", TREES)
    def test_height_grows(self, cls):
        tree, _objects, _ = build_tree(cls, 400, node_capacity=10)
        assert tree.height >= 3
        tree.validate(0.0)


class TestInvariants:
    @pytest.mark.parametrize("cls", TREES)
    def test_validate_after_bulk_insert(self, cls):
        tree, _objects, _ = build_tree(cls, 500)
        tree.validate(0.0)
        assert len(tree) == 500

    @pytest.mark.parametrize("cls", TREES)
    def test_validate_under_update_churn(self, cls):
        tree, objects, rng = build_tree(cls, 250, seed=5)
        t = 0.0
        for _round in range(6):
            t += 7.0
            for oid in rng.sample(sorted(objects), 60):
                obj = random_object(rng, oid, t_ref=t)
                tree.update(obj, t)
                objects[oid] = obj
            tree.validate(t)
        assert tree.guided_delete_misses == 0

    @pytest.mark.parametrize("cls", TREES)
    def test_delete_down_to_empty(self, cls):
        tree, objects, rng = build_tree(cls, 200, seed=9)
        oids = sorted(objects)
        rng.shuffle(oids)
        for i, oid in enumerate(oids):
            tree.delete(oid, 1.0)
            if i % 50 == 0:
                tree.validate(1.0)
        assert len(tree) == 0
        assert tree.height == 1

    def test_delete_missing_raises(self):
        tree = TPRTree()
        with pytest.raises(KeyError):
            tree.delete(1, 0.0)


class TestSearch:
    @pytest.mark.parametrize("cls", TREES)
    def test_search_matches_bruteforce(self, cls):
        tree, objects, rng = build_tree(cls, 300, seed=3)
        for trial in range(10):
            x, y = rng.uniform(0, 900), rng.uniform(0, 900)
            region = KineticBox.rigid(
                Box(x, x + 120, y, y + 120),
                rng.uniform(-2, 2), rng.uniform(-2, 2), 0.0,
            )
            t0 = rng.uniform(0, 5)
            t1 = t0 + rng.uniform(0, 40)
            got = sorted(
                (oid, round(iv.start, 6)) for oid, iv in tree.search(region, t0, t1)
            )
            want = []
            for oid, obj in objects.items():
                iv = intersection_interval(obj.kbox, region, t0, t1)
                if iv is not None:
                    want.append((oid, round(iv.start, 6)))
            assert got == sorted(want), trial

    def test_search_unbounded_window(self):
        tree, objects, _ = build_tree(TPRStarTree, 100, seed=4)
        region = KineticBox.rigid(Box(0, 50, 0, 50), 0, 0, 0.0)
        got = {oid for oid, _ in tree.search(region, 0.0, INF)}
        want = {
            oid
            for oid, obj in objects.items()
            if intersection_interval(obj.kbox, region, 0.0, INF) is not None
        }
        assert got == want


class TestStorageBehaviour:
    def test_shared_storage_and_io_accounting(self):
        storage = TreeStorage(buffer_pages=10)
        t1 = TPRStarTree(storage=storage)
        t2 = TPRStarTree(storage=storage)
        rng = random.Random(0)
        for oid in range(200):
            t1.insert(random_object(rng, oid), 0.0)
            t2.insert(random_object(rng, 10000 + oid), 0.0)
        # With a 10-page buffer and ~15+ pages of nodes, evictions and
        # re-reads must have produced real I/O.
        assert storage.tracker.page_reads > 0
        assert storage.tracker.page_writes > 0

    def test_persistence_through_eviction(self):
        """Nodes must survive full buffer turnover (write-back works)."""
        storage = TreeStorage(buffer_pages=4)
        tree = TPRStarTree(storage=storage)
        rng = random.Random(2)
        objects = {}
        for oid in range(300):
            obj = random_object(rng, oid)
            tree.insert(obj, 0.0)
            objects[oid] = obj
        tree.validate(0.0)
        assert sorted(o.oid for o in tree.all_objects()) == sorted(objects)

    def test_node_visits_counted(self):
        tree, _objects, _ = build_tree(TPRStarTree, 100)
        before = tree.storage.tracker.node_visits
        tree.search(KineticBox.rigid(Box(0, 10, 0, 10), 0, 0, 0.0), 0.0, 1.0)
        assert tree.storage.tracker.node_visits > before


class TestHorizonSensitivity:
    def test_small_horizon_still_correct(self):
        tree, objects, _ = build_tree(TPRStarTree, 150, horizon=5.0)
        tree.validate(0.0)
        region = KineticBox.rigid(Box(100, 400, 100, 400), 0, 0, 0.0)
        got = {oid for oid, _ in tree.search(region, 0.0, 100.0)}
        want = {
            oid
            for oid, obj in objects.items()
            if intersection_interval(obj.kbox, region, 0.0, 100.0) is not None
        }
        assert got == want
