"""Stateful property test: the TPR*-tree against a dictionary model.

Hypothesis drives random interleavings of insert / update / delete /
advance-clock / search; after every step the tree must agree with a
plain dict of objects, and structural invariants must hold.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.geometry import Box, KineticBox, intersection_interval
from repro.index import TPRStarTree
from repro.objects import MovingObject

coords = st.floats(min_value=0.0, max_value=500.0, allow_nan=False)
sides = st.floats(min_value=0.5, max_value=20.0, allow_nan=False)
speeds = st.floats(min_value=-4.0, max_value=4.0, allow_nan=False)


class TPRTreeMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.tree = TPRStarTree(node_capacity=8, horizon=20.0)
        self.model = {}
        self.clock = 0.0
        self.next_oid = 0

    # ------------------------------------------------------------------
    @rule(x=coords, y=coords, side=sides, vx=speeds, vy=speeds)
    def insert(self, x, y, side, vx, vy):
        obj = MovingObject(
            self.next_oid, Box(x, x + side, y, y + side), vx, vy, self.clock
        )
        self.next_oid += 1
        self.tree.insert(obj, self.clock)
        self.model[obj.oid] = obj

    @precondition(lambda self: self.model)
    @rule(pick=st.integers(min_value=0), x=coords, y=coords, vx=speeds, vy=speeds)
    def update(self, pick, x, y, vx, vy):
        oid = sorted(self.model)[pick % len(self.model)]
        side = self.model[oid].kbox.mbr.side(0)
        obj = MovingObject(oid, Box(x, x + side, y, y + side), vx, vy, self.clock)
        self.tree.update(obj, self.clock)
        self.model[oid] = obj

    @precondition(lambda self: self.model)
    @rule(pick=st.integers(min_value=0))
    def delete(self, pick):
        oid = sorted(self.model)[pick % len(self.model)]
        stored = self.tree.delete(oid, self.clock)
        assert stored == self.model.pop(oid)

    @rule(dt=st.floats(min_value=0.1, max_value=5.0, allow_nan=False))
    def advance_clock(self, dt):
        self.clock += dt

    @rule(qx=coords, qy=coords, length=st.floats(min_value=0, max_value=30,
                                                 allow_nan=False))
    def search_matches_model(self, qx, qy, length):
        region = KineticBox.rigid(Box(qx, qx + 60, qy, qy + 60), 0.5, -0.5,
                                  self.clock)
        t1 = self.clock + length
        got = {oid for oid, _ in self.tree.search(region, self.clock, t1)}
        want = {
            oid
            for oid, obj in self.model.items()
            if intersection_interval(obj.kbox, region, self.clock, t1) is not None
        }
        assert got == want

    # ------------------------------------------------------------------
    @invariant()
    def sizes_agree(self):
        if hasattr(self, "tree"):
            assert len(self.tree) == len(self.model)

    @invariant()
    def structure_valid(self):
        if hasattr(self, "tree") and len(self.model) > 0:
            self.tree.validate(self.clock)

    @invariant()
    def guided_deletes_never_miss(self):
        if hasattr(self, "tree"):
            assert self.tree.guided_delete_misses == 0


TPRTreeMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
TestTPRTreeStateful = TPRTreeMachine.TestCase
