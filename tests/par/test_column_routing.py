"""Column routing in the sharded engine: vectorized, bit-identical.

``spans_to_shards`` must mirror the scalar ``shards_for_span`` decision
for decision, and ``apply_update_columns`` must land every shard in the
exact same state the object-path ``apply_updates`` would — same members,
same per-shard stores, same interval endpoints.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import JoinConfig
from repro.geometry import INF
from repro.par import ShardedJoinEngine, StripePartition
from repro.workloads import VectorUpdateStream, make_workload_arrays

T_M = 10.0
N = 80


def arrays(seed=13):
    return make_workload_arrays(
        N, "uniform", max_speed=3.0, object_size_pct=1.5, t_m=T_M, seed=seed
    )


class TestSpansToShards:
    def test_matches_scalar_rule_exhaustively(self):
        part = StripePartition((10.0, 20.0, 35.0))
        rng = np.random.default_rng(0)
        lo = rng.uniform(-5.0, 45.0, 500)
        hi = lo + rng.uniform(0.0, 15.0, 500)
        first, last = part.spans_to_shards(lo, hi)
        for k in range(500):
            want = part.shards_for_span(float(lo[k]), float(hi[k]))
            assert tuple(range(first[k], last[k] + 1)) == want

    def test_boundary_spans_belong_to_both_stripes(self):
        part = StripePartition((10.0,))
        first, last = part.spans_to_shards(
            np.asarray([10.0, 9.0, 10.0]), np.asarray([10.0, 10.0, 11.0])
        )
        # A span touching the cut intersects both neighbors, like the
        # scalar rule's closed-stripe convention.
        assert first.tolist() == [0, 0, 0]
        assert last.tolist() == [1, 1, 1]

    def test_infinite_spans_cover_everything(self):
        part = StripePartition((10.0, 20.0))
        first, last = part.spans_to_shards(
            np.asarray([-INF]), np.asarray([INF])
        )
        assert (first[0], last[0]) == (0, part.n_shards - 1)

    def test_empty_span_rejected(self):
        part = StripePartition((10.0,))
        with pytest.raises(ValueError, match="empty span"):
            part.spans_to_shards(np.asarray([5.0]), np.asarray([4.0]))

    def test_no_cuts_single_shard(self):
        part = StripePartition(())
        first, last = part.spans_to_shards(
            np.asarray([0.0, 99.0]), np.asarray([1.0, 100.0])
        )
        assert first.tolist() == [0, 0]
        assert last.tolist() == [0, 0]


@pytest.mark.parametrize("algorithm", ["tc", "mtb"])
def test_column_path_matches_object_path_per_shard(algorithm):
    """Drive twin sharded engines, one per update path; compare shards."""
    arr = arrays()
    scenario = arr.to_scenario()
    config = JoinConfig(t_m=T_M)

    def build():
        engine = ShardedJoinEngine(
            scenario.set_a,
            scenario.set_b,
            algorithm=algorithm,
            config=config,
            shards=4,
        )
        engine.run_initial_join()
        return engine

    col_engine, obj_engine = build(), build()
    stream = VectorUpdateStream(arr, seed=21)
    for step in range(1, 11):
        t = float(step)
        col_engine.tick(t)
        obj_engine.tick(t)
        upd_a, upd_b = stream.updates_at(t)
        col_engine.apply_update_columns(upd_a, upd_b)
        obj_engine.apply_updates(upd_a.objects() + upd_b.objects())
        assert col_engine.result_at(t) == obj_engine.result_at(t)
    col_dumps = col_engine.store_dumps()
    obj_dumps = obj_engine.store_dumps()
    assert sorted(col_dumps) == sorted(obj_dumps)
    for sid in col_dumps:
        assert sorted(col_dumps[sid]) == sorted(obj_dumps[sid]), f"shard {sid}"
    assert col_engine.update_count == obj_engine.update_count > 0
    col_engine.close()
    obj_engine.close()


def test_column_path_unknown_oid_rejected():
    arr = arrays()
    scenario = arr.to_scenario()
    engine = ShardedJoinEngine(
        scenario.set_a, scenario.set_b, algorithm="mtb",
        config=JoinConfig(t_m=T_M), shards=2,
    )
    engine.run_initial_join()
    engine.tick(1.0)
    stream = VectorUpdateStream(arr, seed=21)
    upd_a, upd_b = stream.updates_at(1.0)
    upd_a.oid[0] = 424242
    with pytest.raises(KeyError, match="424242"):
        engine.apply_update_columns(upd_a, upd_b)
    engine.close()


def test_column_path_with_sanitizer():
    """The per-shard validators accept column-routed state every tick."""
    arr = arrays(seed=29)
    scenario = arr.to_scenario()
    engine = ShardedJoinEngine(
        scenario.set_a, scenario.set_b, algorithm="mtb",
        config=JoinConfig(t_m=T_M, sanitize=True), shards=3,
    )
    engine.run_initial_join()
    stream = VectorUpdateStream(arr, seed=5)
    for step in range(1, 7):
        t = float(step)
        engine.tick(t)
        upd_a, upd_b = stream.updates_at(t)
        engine.apply_update_columns(upd_a, upd_b)
    assert len(engine.merged_store()) > 0
    engine.close()
