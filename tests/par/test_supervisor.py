"""ShardSupervisor unit behaviour: timeouts, death detection, recovery
bookkeeping, checkpoint/restore, and zombie-free shutdown.

Every test arms a watchdog alarm: the whole point of supervision is
that no failure mode may hang the parent, so a test that blocks is a
test that fails.
"""

from __future__ import annotations

import signal

import pytest

from repro.check import check_supervisor_state
from repro.core import JoinConfig
from repro.par import (
    ShardCommandError,
    ShardSupervisor,
    ShardTimeoutError,
    ShardWorkerDied,
    SupervisorStats,
)
from repro.par import worker
from repro.workloads import make_workload

T_M = 8.0


@pytest.fixture(autouse=True)
def watchdog():
    signal.alarm(120)
    yield
    signal.alarm(0)


def shard_spec(seed=11, n=24):
    scenario = make_workload(
        n, "uniform", max_speed=3.0, object_size_pct=0.8, t_m=T_M, seed=seed
    )
    config = JoinConfig(t_m=T_M, node_capacity=8)
    return worker.build_spec(
        scenario.set_a, scenario.set_b, "mtb", config, 0.0
    )


def make_supervisor(**kwargs):
    kwargs.setdefault("timeout", 15.0)
    kwargs.setdefault("heartbeat", 0.01)
    return ShardSupervisor(1, [0], **kwargs)


class TestLiveness:
    def test_hung_worker_times_out(self):
        """A recv with no reply raises ShardTimeoutError — never hangs."""
        sup = make_supervisor(timeout=0.3, fault_spec="hang:op=objects")
        slot = sup._slots[0]
        assert sup._post(slot, [("objects", 0)])
        with pytest.raises(ShardTimeoutError):
            sup._await_reply(slot)
        assert sup.stats.timeouts == 1
        slot.kill()  # don't wait politely for a worker asleep for an hour
        sup.close()

    def test_dead_worker_detected(self):
        sup = make_supervisor(fault_spec="kill:op=objects")
        slot = sup._slots[0]
        assert sup._post(slot, [("objects", 0)])
        with pytest.raises(ShardWorkerDied):
            sup._await_reply(slot)
        assert sup.stats.worker_deaths == 1
        sup.close()

    def test_command_error_does_not_kill_the_worker(self):
        """Deterministic command failures surface as ShardCommandError
        and leave the worker (and its engines) fully usable."""
        sup = make_supervisor()
        with pytest.raises(ShardCommandError):
            sup.run({0: [("objects", 0)]})  # no engine built yet: KeyError
        result = sup.run({0: [("build", 0, shard_spec()), ("initial_join", 0)]})
        assert len(result[0]) == 2
        dump = sup.run({0: [("store_dump", 0)]})[0][0]
        assert isinstance(dump, list)
        sup.close()

    def test_unpicklable_result_keeps_framing(self):
        """A poisoned result degrades to a structured error, after which
        the same pipe still answers correctly."""
        sup = make_supervisor(fault_spec="badresult:op=objects")
        sup.run({0: [("build", 0, shard_spec())]})
        with pytest.raises(ShardCommandError, match="unpicklable"):
            sup.run({0: [("objects", 0)]})
        oids_a, oids_b = sup.run({0: [("objects", 0)]})[0][0]
        assert oids_a and oids_b
        sup.close()


class TestRecovery:
    def test_crash_recovery_is_state_identical(self):
        sup = make_supervisor(checkpoint_interval=2)
        sup.run({0: [("build", 0, shard_spec()), ("initial_join", 0)]})
        for step in range(1, 5):
            sup.run({0: [("tick", 0, float(step)), ("ops", 0, [])]})
        before = sup.run({0: [("store_dump", 0)]})[0][0]
        # Simulate a hard crash between batches.
        sup._slots[0].proc.terminate()
        after = sup.run({0: [("store_dump", 0)]})[0][0]
        assert after == before
        assert sup.stats.worker_deaths >= 1
        assert sup.stats.respawns >= 1
        assert sup.stats.replayed_commands > 0
        assert sup.stats.recovery_seconds > 0
        sup.close()

    def test_oplog_stays_bounded_by_checkpoints(self):
        sup = make_supervisor(checkpoint_interval=2)
        sup.run({0: [("build", 0, shard_spec()), ("initial_join", 0)]})
        for step in range(1, 7):
            sup.run({0: [("tick", 0, float(step)), ("ops", 0, [])]})
            state = sup.export_state(now=float(step))
            assert check_supervisor_state(state) == []
            for entry in state["shards"]:
                assert entry["oplog_len"] <= sup.checkpoint_interval
        assert sup.stats.checkpoints >= 1
        assert sup.export_state(now=6.0)["shards"][0]["epoch"] >= 1
        sup.close()

    def test_exhausted_retries_degrade_in_process(self):
        sup = make_supervisor(max_retries=0, checkpoint_interval=2)
        sup.run({0: [("build", 0, shard_spec()), ("initial_join", 0)]})
        before = sup.run({0: [("store_dump", 0)]})[0][0]
        sup._slots[0].proc.terminate()
        after = sup.run({0: [("store_dump", 0)]})[0][0]
        assert after == before
        assert sup.stats.degraded_slots == 1
        assert sup._slots[0].degraded
        state = sup.export_state(now=0.0)
        assert check_supervisor_state(state) == []
        assert state["shards"][0]["degraded"]
        # Degraded shards keep working entirely in-process.
        sup.run({0: [("tick", 0, 1.0), ("ops", 0, [])]})
        sup.close()


class TestCheckpointBlob:
    def build_registry(self):
        registry = {}
        worker.execute(
            registry, [("build", 0, shard_spec()), ("initial_join", 0)]
        )
        return registry

    def test_restore_is_store_identical(self):
        registry = self.build_registry()
        engine = registry[0]
        engine.tick(1.0)
        blob = worker.execute(registry, [("checkpoint", 0)])[0]
        restored = worker.restore_engine(blob)
        assert worker._dump_store(restored) == worker._dump_store(engine)
        assert restored.update_count == engine.update_count
        assert restored.now == engine.now
        assert sorted(restored.objects_a) == sorted(engine.objects_a)

    def test_restored_engine_evolves_like_the_original(self):
        registry = self.build_registry()
        engine = registry[0]
        blob = worker.make_checkpoint(engine)
        twin = {0: worker.restore_engine(blob)}
        for step in (1.0, 2.0):
            for reg in (registry, twin):
                worker.execute(reg, [("tick", 0, step), ("prune", 0)])
            assert worker.execute(twin, [("store_dump", 0)]) == worker.execute(
                registry, [("store_dump", 0)]
            )

    def test_checkpoint_spec_extracts_build_recipe(self):
        registry = self.build_registry()
        blob = worker.make_checkpoint(registry[0])
        spec = worker.checkpoint_spec(blob)
        assert spec[2] == "mtb"
        assert spec[4] == registry[0].now

    def test_unknown_format_rejected(self):
        bad = {"format": "repro.par.ckpt/999", "spec": None,
               "rows": [], "update_count": 0}
        with pytest.raises(ValueError, match="format"):
            worker.restore_engine(bad)
        with pytest.raises(ValueError, match="format"):
            worker.checkpoint_spec(bad)

    def test_legacy_tuple_blob_rejected(self):
        legacy = ("repro.par.ckpt/1", None, [], 0)
        with pytest.raises(ValueError, match="format"):
            worker.restore_engine(legacy)

    def test_blob_keys_match_declared_format(self):
        blob = worker.make_checkpoint(self.build_registry()[0])
        assert blob["format"] == worker.CHECKPOINT_FORMAT
        assert set(blob) == {
            "format", "spec", "rows", "update_count", "delta_seed", "engine",
        }
        assert blob["engine"] == "object"


class TestShutdown:
    def test_close_reaps_every_worker(self):
        sup = ShardSupervisor(2, [0, 1], heartbeat=0.01)
        procs = [slot.proc for slot in sup._slots]
        assert all(p.is_alive() for p in procs)
        sup.close()
        assert all(not p.is_alive() for p in procs)
        # exitcode is only set once the child has been reaped (no zombie).
        assert all(p.exitcode is not None for p in procs)
        assert all(slot.proc is None for slot in sup._slots)
        assert all(slot.conn is None for slot in sup._slots)

    def test_close_after_crash_is_clean(self):
        sup = make_supervisor()
        sup._slots[0].proc.terminate()
        sup._slots[0].proc.join(timeout=5.0)
        sup.close()
        assert sup._slots[0].proc is None


class TestStats:
    def test_as_dict_round_trip(self):
        stats = SupervisorStats(timeouts=2, respawns=1)
        d = stats.as_dict()
        assert d["timeouts"] == 2
        assert d["respawns"] == 1
        assert set(d) == {
            "timeouts",
            "worker_deaths",
            "respawns",
            "recoveries",
            "replayed_commands",
            "checkpoints",
            "dropped_replies",
            "degraded_slots",
            "recovery_seconds",
        }

    def test_validation_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            ShardSupervisor(1, [0], timeout=-1.0)
        with pytest.raises(ValueError):
            ShardSupervisor(1, [0], heartbeat=0.0)
        with pytest.raises(ValueError):
            ShardSupervisor(1, [0], checkpoint_interval=0)
        with pytest.raises(ValueError):
            ShardSupervisor(1, [0], max_retries=-1)
