"""Chaos matrix: injected worker faults never change the join answer.

Each scenario runs the serial engine and a fault-armed sharded engine
off one update feed and requires the per-tick answers and the merged
result store to stay bit-identical to the unfaulted serial run — the
supervisor must make crashes, hangs, and dropped replies invisible.
A watchdog alarm backs the suite: a hang is a failure, not a stall.
"""

from __future__ import annotations

import pickle
import signal

import pytest

from repro.core import ContinuousJoinEngine, JoinConfig
from repro.faults import (
    Fault,
    FaultInjected,
    FaultPlan,
    Unpicklable,
)
from repro.par import ShardCommandError, ShardedJoinEngine
from repro.workloads import UpdateStream, make_workload

T_M = 8.0
STEPS = 4


@pytest.fixture(autouse=True)
def watchdog():
    signal.alarm(180)
    yield
    signal.alarm(0)


def snapshot(store):
    return sorted(
        (key, tuple((iv.start, iv.end) for iv in intervals))
        for key, intervals in store._pairs.items()
    )


def drive_chaos(faults, shards=4, workers=2, seed=19, **config_kwargs):
    """Serial vs fault-armed sharded run; returns the supervisor stats."""
    scenario = make_workload(
        40, "uniform", max_speed=3.0, object_size_pct=0.8, t_m=T_M, seed=seed
    )
    serial = ContinuousJoinEngine(
        scenario.set_a, scenario.set_b, "mtb",
        JoinConfig(t_m=T_M, node_capacity=8),
    )
    serial.run_initial_join()
    config_kwargs.setdefault("shard_timeout", 10.0)
    config_kwargs.setdefault("shard_heartbeat", 0.01)
    config = JoinConfig(
        t_m=T_M, node_capacity=8, faults=faults, **config_kwargs
    )
    sharded = ShardedJoinEngine(
        scenario.set_a, scenario.set_b, "mtb", config,
        shards=shards, workers=workers,
    )
    sharded.run_initial_join()
    assert snapshot(serial._strategy.store) == snapshot(sharded.merged_store())
    stream = UpdateStream(scenario, seed=seed + 1)
    for t, batch in stream.by_timestamp(t_start=1.0, t_end=float(STEPS)):
        serial.tick(t)
        for obj in batch:
            serial.apply_update(obj)
        assert sharded.step(t, batch) == serial.result_at(t), (faults, t)
        assert snapshot(serial._strategy.store) == snapshot(
            sharded.merged_store()
        ), (faults, t)
    sharded.validate()
    stats = sharded.fault_stats()
    sharded.close()
    return stats


class TestChaosMatrix:
    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("op", ["initial_join", "tick", "ops"])
    def test_kill_recovers_bit_exact(self, op, shards):
        stats = drive_chaos(f"kill:op={op}", shards=shards)
        assert stats.worker_deaths >= 1
        assert stats.recoveries >= 1
        assert stats.respawns >= 1
        assert stats.degraded_slots == 0

    def test_kill_mid_run_after_checkpoints(self):
        """The crash lands after checkpoints exist, so recovery replays
        from a restore base rather than the original build."""
        stats = drive_chaos(
            "kill:op=tick,nth=3", checkpoint_interval=2
        )
        assert stats.worker_deaths >= 1
        assert stats.checkpoints >= 1

    def test_double_kill_single_slot(self):
        stats = drive_chaos(
            "kill:op=tick,nth=1;kill:op=ops,nth=2", shards=2
        )
        assert stats.worker_deaths >= 2
        assert stats.recoveries >= 2

    def test_hang_times_out_and_recovers(self):
        stats = drive_chaos("hang:op=tick", shard_timeout=1.0)
        assert stats.timeouts >= 1
        assert stats.recoveries >= 1

    def test_delay_within_timeout_needs_no_recovery(self):
        stats = drive_chaos("delay:op=tick,seconds=0.2", shard_timeout=10.0)
        assert stats.timeouts == 0
        assert stats.recoveries == 0
        assert stats.worker_deaths == 0

    def test_dropped_reply_recovers(self):
        stats = drive_chaos("drop", shard_timeout=1.0)
        assert stats.dropped_replies >= 1
        assert stats.recoveries >= 1

    def test_exhausted_retries_degrade_but_stay_exact(self):
        stats = drive_chaos("kill:op=tick", max_retries=0)
        assert stats.degraded_slots >= 1

    def test_injected_error_surfaces_without_recovery(self):
        """`error` is deterministic: it surfaces to the caller instead
        of triggering respawn, and the engines stay usable after."""
        scenario = make_workload(
            30, "uniform", max_speed=3.0, object_size_pct=0.8, t_m=T_M, seed=5
        )
        config = JoinConfig(
            t_m=T_M, node_capacity=8, faults="error:op=store_dump",
            shard_heartbeat=0.01,
        )
        sharded = ShardedJoinEngine(
            scenario.set_a, scenario.set_b, "mtb", config,
            shards=2, workers=2,
        )
        sharded.run_initial_join()
        with pytest.raises(ShardCommandError, match="FaultInjected"):
            sharded.merged_store()
        stats = sharded.fault_stats()
        assert stats.recoveries == 0
        # One-shot fault spent: the same query now succeeds.
        serial = ContinuousJoinEngine(
            scenario.set_a, scenario.set_b, "mtb",
            JoinConfig(t_m=T_M, node_capacity=8),
        )
        serial.run_initial_join()
        assert snapshot(sharded.merged_store()) == snapshot(
            serial._strategy.store
        )
        sharded.close()

    def test_unpicklable_result_surfaces_cleanly(self):
        scenario = make_workload(
            30, "uniform", max_speed=3.0, object_size_pct=0.8, t_m=T_M, seed=5
        )
        config = JoinConfig(
            t_m=T_M, node_capacity=8, faults="badresult:op=store_dump",
            shard_heartbeat=0.01,
        )
        sharded = ShardedJoinEngine(
            scenario.set_a, scenario.set_b, "mtb", config,
            shards=2, workers=2,
        )
        sharded.run_initial_join()
        with pytest.raises(ShardCommandError, match="unpicklable"):
            sharded.merged_store()
        sharded.merged_store()  # framing survived; pipe still usable
        sharded.close()

    def test_supervisor_counters_reach_the_obs_rollup(self):
        scenario = make_workload(
            30, "uniform", max_speed=3.0, object_size_pct=0.8, t_m=T_M, seed=5
        )
        config = JoinConfig(
            t_m=T_M, node_capacity=8, obs=True, faults="kill:op=tick,nth=1",
            shard_timeout=10.0, shard_heartbeat=0.01,
        )
        sharded = ShardedJoinEngine(
            scenario.set_a, scenario.set_b, "mtb", config,
            shards=2, workers=2,
        )
        sharded.run_initial_join()
        sharded.step(1.0, [])
        rollup = sharded.obs_rollup()
        meta = rollup["meta"]["supervisor"]
        assert meta["worker_deaths"] >= 1
        sharded.close()


class TestFaultPlan:
    def test_parse_spec(self):
        plan = FaultPlan.parse("kill:op=tick,nth=2;drop:shard=1")
        assert [f.kind for f in plan.faults] == ["kill", "drop"]
        assert plan.faults[0].op == "tick"
        assert plan.faults[0].nth == 2
        assert plan.faults[1].shard == 1
        assert bool(plan)

    def test_empty_specs_are_no_ops(self):
        assert not FaultPlan.parse(None)
        assert not FaultPlan.parse("")
        assert not FaultPlan.parse(" ; ")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultPlan.parse("explode")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="field"):
            FaultPlan.parse("kill:bogus=1")

    def test_nth_must_be_positive(self):
        with pytest.raises(ValueError):
            Fault("kill", nth=0)

    def test_matching_is_one_shot(self):
        fault = Fault("kill", op="tick", nth=2)
        assert not fault.matches("tick", 0)
        assert not fault.matches("ops", 0)  # non-matching op doesn't count
        assert fault.matches("tick", 1)
        assert fault.fired
        assert not fault.matches("tick", 2)  # never fires twice

    def test_shard_filter(self):
        fault = Fault("kill", op="tick", shard=3)
        assert not fault.matches("tick", 1)
        assert fault.matches("tick", 3)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "delay:seconds=0.5")
        plan = FaultPlan.from_env()
        assert plan.faults[0].kind == "delay"
        assert plan.faults[0].stall == 0.5
        monkeypatch.delenv("REPRO_FAULTS")
        assert not FaultPlan.from_env()

    def test_stall_defaults(self):
        assert Fault("hang").stall == 3600.0
        assert Fault("delay").stall == pytest.approx(0.05)
        assert Fault("delay", seconds=1.5).stall == 1.5

    def test_before_command_raises_injected_error(self):
        plan = FaultPlan.parse("error:op=prune")
        plan.before_command(("tick", 0, 1.0))  # non-matching: silent
        with pytest.raises(FaultInjected):
            plan.before_command(("prune", 0))

    def test_poison_results_replaces_matching_result(self):
        plan = FaultPlan.parse("badresult:op=store_dump")
        cmds = [("tick", 0, 1.0), ("store_dump", 0)]
        results = [None, [("rows",)]]
        plan.poison_results(cmds, results)
        assert results[0] is None
        assert isinstance(results[1], Unpicklable)

    def test_should_drop_counts_per_slot(self):
        plan = FaultPlan.parse("drop:shard=1,nth=2")
        assert not plan.should_drop(0)  # slot filter
        assert not plan.should_drop(1)  # first match, nth=2
        assert plan.should_drop(1)
        assert not plan.should_drop(1)  # one-shot

    def test_unpicklable_defeats_pickle(self):
        with pytest.raises(TypeError):
            pickle.dumps(Unpicklable())


# ----------------------------------------------------------------------
# Delta streams under chaos: exactly-once emission across recovery
# ----------------------------------------------------------------------
def drive_delta_chaos(faults, shards=4, workers=2, seed=7, **config_kwargs):
    """Serial vs fault-armed sharded run with ``deltas=True``.

    Beyond the answer/store equalities of :func:`drive_chaos`, every
    tick must emit an *identical netted delta stream* from both
    engines, and folding the sharded stream from t=0 must land on the
    merged store bit-for-bit — a shard respawn that re-emitted (or
    swallowed) events would break one of the two.
    """
    from repro.deltas import fold_events

    # Denser than the answer-equality matrix: the delta assertions are
    # vacuous unless ticks actually net both event signs.
    scenario = make_workload(
        60, "uniform", max_speed=5.0, object_size_pct=3.0, t_m=T_M, seed=seed
    )
    serial = ContinuousJoinEngine(
        scenario.set_a, scenario.set_b, "mtb",
        JoinConfig(t_m=T_M, node_capacity=8, deltas=True),
    )
    serial.run_initial_join()
    config_kwargs.setdefault("shard_timeout", 10.0)
    config_kwargs.setdefault("shard_heartbeat", 0.01)
    config = JoinConfig(
        t_m=T_M, node_capacity=8, deltas=True, faults=faults, **config_kwargs
    )
    sharded = ShardedJoinEngine(
        scenario.set_a, scenario.set_b, "mtb", config,
        shards=shards, workers=workers,
    )
    sharded.run_initial_join()
    assert tuple(sharded.deltas()) == serial.deltas()
    signs = set()
    stream = UpdateStream(scenario, seed=seed + 1)
    for t, batch in stream.by_timestamp(t_start=1.0, t_end=float(STEPS)):
        serial.tick(t)
        for obj in batch:
            serial.apply_update(obj)
        assert sharded.step(t, batch) == serial.result_at(t), (faults, t)
        # Exactly-once: identical netted stream, and the fold from t=0
        # reconstructs the merged store with no duplicate/phantom rows.
        assert tuple(sharded.deltas(t)) == serial.deltas(t), (faults, t)
        folded = fold_events(sharded._merger, upto=t).rows()
        assert folded == sharded.merged_store().interval_rows(), (faults, t)
        signs |= {ev.sign for ev in sharded.deltas(t)}
    assert signs == {1, -1}, "chaos run never exercised both event signs"
    sharded.validate()
    stats = sharded.fault_stats()
    sharded.close()
    return stats


class TestDeltaChaos:
    def test_kill_replays_deltas_exactly_once(self):
        stats = drive_delta_chaos("kill:op=ops")
        assert stats.worker_deaths >= 1
        assert stats.recoveries >= 1

    def test_kill_after_checkpoint_reemits_nothing(self):
        """Recovery goes through restore + replay: the restored shard's
        ledger is re-armed from the checkpoint baseline, so the open
        tick re-reports its net and closed history is never re-sent."""
        stats = drive_delta_chaos(
            "kill:op=tick,nth=3", checkpoint_interval=2, sanitize=True
        )
        assert stats.worker_deaths >= 1
        assert stats.checkpoints >= 1

    def test_killed_delta_pull_is_retried(self):
        """Dying *during* the delta pull itself: the re-issued pull
        supersedes the lost one (replacement ingestion)."""
        stats = drive_delta_chaos("kill:op=deltas", shards=2)
        assert stats.worker_deaths >= 1
        assert stats.recoveries >= 1
