"""StripePartition: stripe geometry, fitting, and closed membership."""

from __future__ import annotations

import pickle

import pytest

from repro.geometry import INF, Box
from repro.objects import MovingObject
from repro.par import StripePartition


def obj(oid, x, vx=0.0, vy=0.0, y=0.0, side=1.0):
    return MovingObject(oid, Box(x, x + side, y, y + side), vx, vy, 0.0)


class TestStripeGeometry:
    def test_regions_tile_the_line(self):
        p = StripePartition((10.0, 20.0, 35.0))
        assert p.n_shards == 4
        assert p.region(0) == (-INF, 10.0)
        assert p.region(1) == (10.0, 20.0)
        assert p.region(2) == (20.0, 35.0)
        assert p.region(3) == (35.0, INF)
        with pytest.raises(IndexError):
            p.region(4)

    def test_single_stripe_covers_everything(self):
        p = StripePartition(())
        assert p.region(0) == (-INF, INF)
        assert p.shards_for_span(-1e12, 1e12) == (0,)

    def test_span_membership(self):
        p = StripePartition((10.0, 20.0))
        assert p.shards_for_span(0.0, 5.0) == (0,)
        assert p.shards_for_span(12.0, 15.0) == (1,)
        assert p.shards_for_span(5.0, 15.0) == (0, 1)
        assert p.shards_for_span(5.0, 25.0) == (0, 1, 2)
        with pytest.raises(ValueError):
            p.shards_for_span(3.0, 2.0)

    def test_boundary_belongs_to_both_neighbors(self):
        p = StripePartition((10.0,))
        assert p.shards_for_span(10.0, 10.0) == (0, 1)
        assert p.shards_for_span(9.0, 10.0) == (0, 1)
        assert p.shards_for_span(10.0, 11.0) == (0, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            StripePartition((5.0, 5.0))
        with pytest.raises(ValueError):
            StripePartition((5.0, 3.0))
        with pytest.raises(ValueError):
            StripePartition((), axis=7)

    def test_immutable(self):
        p = StripePartition((1.0,))
        with pytest.raises(AttributeError):
            p.axis = 1


class TestFit:
    def test_quantile_cuts_balance_population(self):
        objs = [obj(i, float(x)) for i, x in enumerate(range(100))]
        p = StripePartition.fit(objs, 4, axis=0)
        assert p.n_shards == 4
        counts = [0] * 4
        for o in objs:
            lo, hi = o.kbox.mbr.x_lo, o.kbox.mbr.x_hi
            for s in p.shards_for_span(lo, hi):
                counts[s] += 1
        # Quantile cuts keep every stripe within a factor of the mean.
        assert min(counts) >= 100 // 4 - 2

    def test_auto_axis_prefers_the_slow_dimension(self):
        fast_x = [obj(i, float(i), vx=5.0, vy=0.1) for i in range(20)]
        assert StripePartition.fit(fast_x, 2).axis == 1
        fast_y = [obj(i, float(i), vx=0.1, vy=5.0) for i in range(20)]
        assert StripePartition.fit(fast_y, 2).axis == 0

    def test_point_mass_falls_back_to_equal_width(self):
        objs = [obj(i, 50.0) for i in range(10)]  # all centers collide
        p = StripePartition.fit(objs, 3, axis=0)
        assert p.n_shards == 3
        assert len(p.cuts) == 2

    def test_one_shard_and_empty_input(self):
        assert StripePartition.fit([obj(0, 1.0)], 1, axis=0).cuts == ()
        assert StripePartition.fit([], 5, axis=0).cuts == ()
        with pytest.raises(ValueError):
            StripePartition.fit([], 0)


class TestRoundTrips:
    def test_dict_round_trip(self):
        p = StripePartition((3.0, 9.0), axis=1)
        q = StripePartition.from_dict(p.to_dict())
        assert q.cuts == p.cuts and q.axis == p.axis

    def test_pickle_round_trip(self):
        p = StripePartition((3.0, 9.0), axis=1)
        q = pickle.loads(pickle.dumps(p))
        assert q.cuts == p.cuts and q.axis == p.axis
