"""Columnar shard workers: bit-exactness and fault recovery.

``JoinConfig(shard_engine="columnar")`` routes every per-shard engine
onto :class:`~repro.core.columnar.ColumnarJoinEngine` (with its
column result store).  The routing must be an implementation detail:
for every shard/worker combination the merged store is bit-identical
to the serial columnar engine's — including across worker crashes,
where the ``ckpt/4`` blob must rebuild the columnar engine class and
its planes exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ColumnarJoinEngine, ContinuousJoinEngine, JoinConfig
from repro.core.result import ColumnResultStore
from repro.par import ShardedJoinEngine
from repro.par import worker
from repro.workloads import UpdateStream, make_workload

T_M = 8.0
STEPS = 5


def snapshot(store):
    """Exact (unrounded) store contents, order-normalized."""
    return sorted(
        (key, tuple((iv.start, iv.end) for iv in intervals))
        for key, intervals in store._pairs.items()
    )


def scenario_for(seed: int, n: int = 40):
    return make_workload(
        n, "uniform", max_speed=3.0, object_size_pct=0.8, t_m=T_M, seed=seed
    )


def drive_both(shards, workers, seed=19, faults=None, **config_kwargs):
    """Serial engine vs columnar-worker sharded engine off one feed."""
    scenario = scenario_for(seed)
    serial = ContinuousJoinEngine(
        scenario.set_a, scenario.set_b, "mtb",
        JoinConfig(t_m=T_M, node_capacity=8),
    )
    serial.run_initial_join()
    if workers:
        config_kwargs.setdefault("shard_timeout", 10.0)
        config_kwargs.setdefault("shard_heartbeat", 0.01)
    config = JoinConfig(
        t_m=T_M, node_capacity=8, shard_engine="columnar",
        faults=faults, **config_kwargs
    )
    sharded = ShardedJoinEngine(
        scenario.set_a, scenario.set_b, "mtb", config,
        shards=shards, workers=workers,
    )
    sharded.run_initial_join()
    assert snapshot(serial._strategy.store) == snapshot(sharded.merged_store())
    pair_ticks = 0
    stream = UpdateStream(scenario, seed=seed + 1)
    for t, batch in stream.by_timestamp(t_start=1.0, t_end=float(STEPS)):
        serial.tick(t)
        for obj in batch:
            serial.apply_update(obj)
        want = serial.result_at(t)
        assert sharded.step(t, batch) == want, (shards, workers, t)
        assert snapshot(serial._strategy.store) == snapshot(
            sharded.merged_store()
        ), (shards, workers, t)
        pair_ticks += bool(want)
    assert pair_ticks > 0, "vacuous run: the answer was always empty"
    sharded.validate()
    return sharded


class TestBitExactness:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("workers", [0, 2])
    def test_matches_serial_engine(self, shards, workers):
        sharded = drive_both(shards, workers)
        sharded.close()

    def test_in_process_shards_use_columnar_engines(self):
        """With workers=0 the registry is inspectable: every per-shard
        engine must be the columnar class with a column store."""
        sharded = drive_both(shards=2, workers=0)
        engines = sharded._backend.engines
        assert len(engines) == 2
        for engine in engines.values():
            assert isinstance(engine, ColumnarJoinEngine)
            assert isinstance(engine.store, ColumnResultStore)
        sharded.close()

    def test_sanitized_columnar_run_stays_clean(self):
        """SC8xx checks run inside every shard worker."""
        sharded = drive_both(shards=2, workers=0, sanitize=True)
        sharded.close()

    def test_deltas_flow_from_columnar_shards(self):
        scenario = scenario_for(23)
        config = JoinConfig(t_m=T_M, node_capacity=8, deltas=True,
                            shard_engine="columnar")
        serial = ColumnarJoinEngine(
            scenario.set_a, scenario.set_b, algorithm="mtb",
            config=JoinConfig(t_m=T_M, node_capacity=8, deltas=True),
        )
        serial.run_initial_join()
        sharded = ShardedJoinEngine(
            scenario.set_a, scenario.set_b, "mtb", config, shards=2
        )
        sharded.run_initial_join()
        stream = UpdateStream(scenario, seed=24)
        for t, batch in stream.by_timestamp(t_start=1.0, t_end=float(STEPS)):
            serial.tick(t)
            serial.apply_updates(batch)
            sharded.step(t, batch)
            assert tuple(sharded.deltas(t)) == serial.deltas(t), t
        sharded.close()


class TestFaultRecovery:
    def test_killed_columnar_worker_recovers_exactly(self):
        """A kill fault mid-run must replay onto a restored columnar
        engine with no visible difference in the merged store."""
        sharded = drive_both(
            shards=2, workers=2, faults="kill:op=ops",
            checkpoint_interval=2,
        )
        stats = sharded.fault_stats()
        assert stats is not None
        assert stats.worker_deaths > 0, "the fault never fired"
        assert stats.respawns > 0
        sharded.close()


class TestCheckpointBlob:
    def build(self):
        scenario = scenario_for(11, n=24)
        config = JoinConfig(t_m=T_M, node_capacity=8, shard_engine="columnar")
        registry = {}
        spec = worker.build_spec(
            scenario.set_a, scenario.set_b, "mtb", config, 0.0
        )
        worker.execute(registry, [("build", 0, spec), ("initial_join", 0)])
        return registry

    def test_blob_declares_columnar_engine(self):
        registry = self.build()
        assert isinstance(registry[0], ColumnarJoinEngine)
        blob = worker.make_checkpoint(registry[0])
        assert blob["format"] == "repro.par.ckpt/4"
        assert blob["engine"] == "columnar"

    def test_restore_is_plane_identical(self):
        registry = self.build()
        engine = registry[0]
        engine.tick(1.0)
        restored = worker.restore_engine(worker.make_checkpoint(engine))
        assert isinstance(restored, ColumnarJoinEngine)
        assert isinstance(restored.store, ColumnResultStore)
        assert worker._dump_store(restored) == worker._dump_store(engine)
        restored.store.flush()
        engine.store.flush()
        for plane in ("_a", "_b", "_lo", "_hi"):
            got = getattr(restored.store, plane)[: restored.store._n]
            want = getattr(engine.store, plane)[: engine.store._n]
            assert np.array_equal(got, want), plane

    def test_restored_engine_evolves_like_the_original(self):
        registry = self.build()
        twin = {0: worker.restore_engine(worker.make_checkpoint(registry[0]))}
        for step in (1.0, 2.0):
            for reg in (registry, twin):
                worker.execute(reg, [("tick", 0, step), ("prune", 0)])
            assert worker.execute(twin, [("store_dump", 0)]) == worker.execute(
                registry, [("store_dump", 0)]
            )

    def test_shard_engine_knob_validated(self):
        with pytest.raises(ValueError, match="shard_engine"):
            JoinConfig(t_m=T_M, shard_engine="vector")
