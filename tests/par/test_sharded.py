"""ShardedJoinEngine: bit-exactness, ghost membership, and rollups.

The sharded engine must be an *implementation detail*: for every shard
count and worker count its merged result store is bit-identical to the
unsharded serial engine's, including while objects drift across stripe
boundaries and get admitted to / evicted from shards mid-run.
"""

from __future__ import annotations

import json

import pytest

from repro.check import InvariantViolation, check_sharded_state
from repro.core import ContinuousJoinEngine, JoinConfig
from repro.geometry import Box
from repro.objects import MovingObject
from repro.par import SHARDABLE_ALGORITHMS, ShardedJoinEngine
from repro.workloads import UpdateStream, make_workload

T_M = 8.0
STEPS = 5


def snapshot(store):
    """Exact (unrounded) store contents, order-normalized."""
    return sorted(
        (key, tuple((iv.start, iv.end) for iv in intervals))
        for key, intervals in store._pairs.items()
    )


def scenario_for(seed: int, n: int = 40):
    return make_workload(
        n, "uniform", max_speed=3.0, object_size_pct=0.8, t_m=T_M, seed=seed
    )


def drive_both(algorithm, shards, workers, seed=19, sanitize=False):
    """Run serial and sharded engines tick-by-tick off one update feed.

    Returns per-tick (answer, merged snapshot) agreement evidence plus
    the count of membership changes seen, so callers can assert the run
    actually exercised cross-boundary movement.
    """
    scenario = scenario_for(seed)
    config = JoinConfig(t_m=T_M, node_capacity=8, sanitize=sanitize)
    serial = ContinuousJoinEngine(
        scenario.set_a, scenario.set_b, algorithm, config
    )
    serial.run_initial_join()
    sharded = ShardedJoinEngine(
        scenario.set_a, scenario.set_b, algorithm, config,
        shards=shards, workers=workers,
    )
    sharded.run_initial_join()
    assert snapshot(serial._strategy.store) == snapshot(sharded.merged_store())

    membership_changes = 0
    pair_ticks = 0
    stream = UpdateStream(scenario, seed=seed + 1)
    for t, batch in stream.by_timestamp(t_start=1.0, t_end=float(STEPS)):
        serial.tick(t)
        sharded.tick(t)
        before = {obj.oid: sharded._members[obj.oid] for obj in batch}
        for obj in batch:
            serial.apply_update(obj)
        sharded.apply_updates(batch)
        membership_changes += sum(
            1 for obj in batch if sharded._members[obj.oid] != before[obj.oid]
        )
        want = serial.result_at(t)
        assert sharded.result_at(t) == want, (algorithm, shards, workers, t)
        assert snapshot(serial._strategy.store) == snapshot(
            sharded.merged_store()
        ), (algorithm, shards, workers, t)
        pair_ticks += bool(want)
    assert pair_ticks > 0, "vacuous run: the answer was always empty"
    sharded.close()
    return membership_changes


class TestBitExactness:
    @pytest.mark.parametrize("algorithm", SHARDABLE_ALGORITHMS)
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_matches_serial_engine(self, algorithm, shards):
        drive_both(algorithm, shards, workers=0)

    @pytest.mark.parametrize("algorithm", SHARDABLE_ALGORITHMS)
    def test_boundary_crossers_keep_exactness(self, algorithm):
        """The run must include genuine shard-membership changes."""
        changes = drive_both(algorithm, shards=4, workers=0, seed=37)
        assert changes > 0, "no object ever crossed a stripe boundary"

    def test_sanitized_run_stays_clean(self):
        drive_both("mtb", shards=3, workers=0, sanitize=True)

    def test_pool_backend_matches_serial_backend(self):
        drive_both("mtb", shards=4, workers=2)

    @pytest.mark.parametrize("workers", [0, 2])
    def test_fused_step_equals_tick_apply_result(self, workers):
        """step(t, batch) == tick(t); apply_updates(batch); result_at(t)."""
        scenario = scenario_for(19)
        config = JoinConfig(t_m=T_M, node_capacity=8)
        split = ShardedJoinEngine(
            scenario.set_a, scenario.set_b, "mtb", config,
            shards=4, workers=workers,
        )
        split.run_initial_join()
        fused = ShardedJoinEngine(
            scenario.set_a, scenario.set_b, "mtb", config,
            shards=4, workers=workers,
        )
        fused.run_initial_join()
        stream = UpdateStream(scenario, seed=20)
        pair_ticks = 0
        for t, batch in stream.by_timestamp(t_start=1.0, t_end=float(STEPS)):
            split.tick(t)
            split.apply_updates(batch)
            want = split.result_at(t)
            assert fused.step(t, batch) == want, (workers, t)
            assert snapshot(fused.merged_store()) == snapshot(
                split.merged_store()
            ), (workers, t)
            pair_ticks += bool(want)
        assert pair_ticks > 0, "vacuous run: the answer was always empty"
        split.close()
        fused.close()

    def test_step_rejects_time_going_backwards(self):
        scenario = scenario_for(19, n=8)
        config = JoinConfig(t_m=T_M, node_capacity=8)
        with ShardedJoinEngine(
            scenario.set_a, scenario.set_b, "mtb", config, shards=2
        ) as engine:
            engine.run_initial_join()
            engine.step(2.0, [])
            with pytest.raises(ValueError):
                engine.step(1.0, [])

    def test_prune_drops_the_same_pairs_as_serial(self):
        scenario = scenario_for(29)
        config = JoinConfig(t_m=T_M, node_capacity=8)
        serial = ContinuousJoinEngine(
            scenario.set_a, scenario.set_b, "tc", config
        )
        serial.run_initial_join()
        with ShardedJoinEngine(
            scenario.set_a, scenario.set_b, "tc", config, shards=3
        ) as sharded:
            sharded.run_initial_join()
            assert len(sharded.merged_store()) > 0
            serial.tick(T_M / 2)
            sharded.tick(T_M / 2)
            assert serial.prune_expired() == sharded.prune_expired()
            assert snapshot(serial._strategy.store) == snapshot(
                sharded.merged_store()
            )


class TestConstruction:
    def test_unshardable_algorithms_rejected(self):
        scenario = scenario_for(3, n=6)
        for algorithm in ("naive", "etp"):
            with pytest.raises(ValueError):
                ShardedJoinEngine(scenario.set_a, scenario.set_b, algorithm)

    def test_shared_oids_rejected(self):
        objs = [MovingObject(1, Box(0, 1, 0, 1), 0.0, 0.0, 0.0)]
        with pytest.raises(ValueError):
            ShardedJoinEngine(objs, list(objs), "tc")

    def test_unknown_update_rejected(self):
        scenario = scenario_for(4, n=6)
        engine = ShardedJoinEngine(scenario.set_a, scenario.set_b, "tc")
        engine.run_initial_join()
        with pytest.raises(KeyError):
            engine.apply_update(MovingObject(9999, Box(0, 1, 0, 1), 0, 0, 0.0))


class TestRollups:
    def test_cost_rollup_sums_shard_costs(self):
        scenario = scenario_for(7)
        engine = ShardedJoinEngine(scenario.set_a, scenario.set_b, "mtb",
                                   JoinConfig(t_m=T_M), shards=3)
        engine.run_initial_join()
        total = engine.cost_rollup()
        per_shard = engine.shard_costs()
        assert len(per_shard) == 3
        assert total.pair_tests == sum(
            s.pair_tests for s in per_shard.values()
        )
        assert total.pair_tests > 0

    def test_obs_rollup_merges_shard_recordings(self):
        scenario = scenario_for(8)
        engine = ShardedJoinEngine(scenario.set_a, scenario.set_b, "mtb",
                                   JoinConfig(t_m=T_M, obs=True), shards=2)
        engine.run_initial_join()
        rollup = engine.obs_rollup()
        assert rollup["format"] == "repro.obs/rollup"
        assert rollup["meta"]["shards"] == 2
        assert len(rollup["shards"]) == 2
        for name, value in rollup["totals"].items():
            assert value == sum(
                s["recording"]["totals"].get(name, 0)
                for s in rollup["shards"]
            ), name

    def test_obs_rollup_is_none_without_obs(self):
        scenario = scenario_for(8, n=6)
        engine = ShardedJoinEngine(scenario.set_a, scenario.set_b, "tc")
        assert engine.obs_rollup() is None


class TestExportAndSanitizer:
    @pytest.fixture()
    def colocated(self):
        """Two static, overlapping objects resident on *both* shards."""
        a = [MovingObject(1, Box(9.0, 11.5, 0.0, 2.0), 0.0, 0.0, 0.0)]
        b = [MovingObject(100, Box(9.5, 11.2, 1.0, 3.0), 0.0, 0.0, 0.0)]
        engine = ShardedJoinEngine(a, b, "tc", JoinConfig(t_m=2.0),
                                   shards=2, axis=0)
        engine.run_initial_join()
        return engine

    def test_export_state_survives_json(self, colocated):
        state = json.loads(json.dumps(colocated.export_state()))
        assert state["format"] == "repro.par/1"
        assert check_sharded_state(state) == []

    def test_pair_is_stored_on_both_shards(self, colocated):
        dumps = colocated.store_dumps()
        holders = [sid for sid, rows in dumps.items() if rows]
        assert holders == [0, 1]
        assert dumps[0] == dumps[1]

    def test_sc401_on_broken_cuts(self, colocated):
        state = colocated.export_state()
        state["cuts"] = [5.0, 5.0]
        codes = {f.code for f in check_sharded_state(state)}
        assert "SC401" in codes

    def test_sc401_on_missing_shard(self, colocated):
        state = colocated.export_state()
        state["shards"] = state["shards"][:1]
        codes = {f.code for f in check_sharded_state(state)}
        assert codes == {"SC401"}

    def test_sc402_on_wrong_membership(self, colocated):
        state = colocated.export_state()
        state["objects"][0]["members"] = [0]
        codes = {f.code for f in check_sharded_state(state)}
        assert "SC402" in codes

    def test_sc402_on_missing_resident(self, colocated):
        state = colocated.export_state()
        state["shards"][1]["objects_a"] = []
        codes = {f.code for f in check_sharded_state(state)}
        assert "SC402" in codes

    def test_sc403_on_diverged_copy(self, colocated):
        state = colocated.export_state()
        state["shards"][1]["store"][0][1][0][1] += 0.25
        codes = {f.code for f in check_sharded_state(state)}
        assert codes == {"SC403"}

    def test_validate_raises_on_live_corruption(self, colocated):
        colocated._members[1] = (0,)
        with pytest.raises(InvariantViolation):
            colocated.validate()
