"""Parity suite: the compiled kernel bodies match the NumPy oracle.

``repro.geometry.compiled`` documents an *oracle contract*: the kernel
bodies perform the same IEEE-754 operations in the same order as the
NumPy kernels, so outputs must be **bit-identical** — every assertion
here is exact equality.  ``reference_backend()`` exposes the uncompiled
bodies, so the contract is testable without Numba; the compiled tests
auto-skip where Numba is missing (they run in the CI ``scale`` job).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import compiled
from repro.geometry.interval import INF
from repro.geometry.kernels import (
    KineticBatch,
    _pair_windows,
    batch_insertion_costs,
    batch_sweep_bounds,
    batch_sweep_join,
)
from repro.workloads import make_workload

T0, T1 = 2.0, 30.0


def batches(n=60, seed=11):
    scenario = make_workload(
        n, "uniform", max_speed=4.0, object_size_pct=2.0, t_m=25.0, seed=seed
    )
    a = KineticBatch.from_boxes([o.kbox for o in scenario.set_a])
    b = KineticBatch.from_boxes([o.kbox for o in scenario.set_b])
    return a, b


def dense_pairs(batch_a, batch_b):
    ia, jb = np.meshgrid(
        np.arange(len(batch_a.tref)), np.arange(len(batch_b.tref)), indexing="ij"
    )
    return ia.ravel().astype(np.int64), jb.ravel().astype(np.int64)


class _ParityContract:
    """Shared assertions; subclasses choose the backend under test."""

    def backend(self):
        raise NotImplementedError

    def test_pair_windows_bit_exact(self):
        batch_a, batch_b = batches()
        ia, jb = dense_pairs(batch_a, batch_b)
        want_lo, want_hi, want_ok = _pair_windows(batch_a, ia, batch_b, jb, T0, T1)
        got_lo, got_hi, got_ok = self.backend().pair_windows(
            batch_a, ia, batch_b, jb, T0, T1
        )
        assert np.array_equal(got_ok, want_ok)
        # Windows only matter where the pair survives.
        assert np.array_equal(got_lo[got_ok], want_lo[want_ok])
        assert np.array_equal(got_hi[got_ok], want_hi[want_ok])
        assert want_ok.any() and not want_ok.all()  # both branches exercised

    @pytest.mark.parametrize("dim", [0, 1])
    def test_sweep_bounds_bit_exact(self, dim):
        batch, _ = batches()
        want = batch_sweep_bounds(batch, dim, T0, T1)
        got = self.backend().sweep_bounds(batch, dim, T0, T1)
        assert np.array_equal(got[0], want[0])
        assert np.array_equal(got[1], want[1])

    @pytest.mark.parametrize("dim", [0, 1])
    def test_sweep_bounds_infinite_horizon(self, dim):
        batch, _ = batches()
        want = batch_sweep_bounds(batch, dim, T0, INF)
        got = self.backend().sweep_bounds(batch, dim, T0, INF)
        assert np.array_equal(got[0], want[0])
        assert np.array_equal(got[1], want[1])
        assert np.isinf(got[0]).any()  # outward velocities hit -inf

    def test_insertion_costs_bit_exact(self):
        entries, objs = batches(n=25, seed=5)
        want_enl, want_area = batch_insertion_costs(entries, objs, T0, T1)
        got_enl, got_area = self.backend().insertion_costs(entries, objs, T0, T1)
        assert np.array_equal(got_enl, want_enl)
        assert np.array_equal(got_area, want_area)

    def test_batch_sweep_join_with_backend(self):
        batch_a, batch_b = batches()
        want = batch_sweep_join(batch_a, batch_b, T0, T1)
        got = batch_sweep_join(batch_a, batch_b, T0, T1, backend=self.backend())
        for w, g in zip(want, got):
            assert np.array_equal(g, w)
        assert want[0].shape[0] > 0


class TestReferenceBackend(_ParityContract):
    """The uncompiled loop bodies, always runnable."""

    def backend(self):
        return compiled.reference_backend()


@pytest.mark.skipif(not compiled.HAVE_NUMBA, reason="numba not installed")
class TestNumbaBackend(_ParityContract):
    """The njit-compiled bodies; runs only where Numba is present."""

    def backend(self):
        backend = compiled.get_backend()
        assert backend is not None
        return backend


def test_get_backend_is_none_without_numba():
    if compiled.HAVE_NUMBA:
        pytest.skip("numba installed; fallback path not reachable")
    assert compiled.get_backend() is None


def test_get_backend_is_cached():
    assert compiled.get_backend() is compiled.get_backend()
