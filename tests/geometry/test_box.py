"""Unit and property tests for static boxes (MBRs/VBRs)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Box

coord = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)
extent = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False)


@st.composite
def boxes(draw):
    x = draw(coord)
    y = draw(coord)
    w = draw(extent)
    h = draw(extent)
    return Box(x, x + w, y, y + h)


class TestConstruction:
    def test_basic(self):
        b = Box(0, 2, 1, 4)
        assert b.bounds == (0, 2, 1, 4)
        assert b.area == 6
        assert b.margin == 5
        assert b.center == (1, 2.5)

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            Box(2, 1, 0, 1)
        with pytest.raises(ValueError):
            Box(0, 1, 2, 1)

    def test_degenerate_point(self):
        p = Box.point(3, 4)
        assert p.area == 0
        assert p.contains_point(3, 4)

    def test_from_center(self):
        b = Box.from_center(5, 5, 2, 4)
        assert b == Box(4, 6, 3, 7)

    def test_from_center_negative_rejected(self):
        with pytest.raises(ValueError):
            Box.from_center(0, 0, -1, 1)

    def test_from_bounds(self):
        assert Box.from_bounds((0, 1, 2, 3)) == Box(0, 1, 2, 3)
        with pytest.raises(ValueError):
            Box.from_bounds((0, 1, 2))

    def test_union_of(self):
        u = Box.union_of([Box(0, 1, 0, 1), Box(5, 6, -2, 0)])
        assert u == Box(0, 6, -2, 1)
        with pytest.raises(ValueError):
            Box.union_of([])

    def test_immutable_and_hashable(self):
        b = Box(0, 1, 0, 1)
        with pytest.raises(AttributeError):
            b.something = 1
        assert hash(b) == hash(Box(0, 1, 0, 1))

    def test_dim_accessors(self):
        b = Box(0, 2, 3, 7)
        assert (b.lo(0), b.hi(0)) == (0, 2)
        assert (b.lo(1), b.hi(1)) == (3, 7)
        assert b.side(0) == 2
        assert b.side(1) == 4


class TestGeometry:
    def test_intersects_touching(self):
        assert Box(0, 1, 0, 1).intersects(Box(1, 2, 0, 1))

    def test_disjoint(self):
        assert not Box(0, 1, 0, 1).intersects(Box(1.01, 2, 0, 1))
        assert Box(0, 1, 0, 1).intersection(Box(1.01, 2, 0, 1)) is None

    def test_intersection_value(self):
        inter = Box(0, 4, 0, 4).intersection(Box(2, 6, 1, 3))
        assert inter == Box(2, 4, 1, 3)

    def test_contains(self):
        assert Box(0, 10, 0, 10).contains(Box(1, 2, 3, 4))
        assert not Box(0, 10, 0, 10).contains(Box(1, 11, 3, 4))

    def test_enlargement(self):
        assert Box(0, 1, 0, 1).enlargement(Box(0, 2, 0, 1)) == pytest.approx(1.0)
        assert Box(0, 2, 0, 2).enlargement(Box(0, 1, 0, 1)) == 0.0

    def test_overlap_area(self):
        assert Box(0, 2, 0, 2).overlap_area(Box(1, 3, 1, 3)) == pytest.approx(1.0)
        assert Box(0, 1, 0, 1).overlap_area(Box(5, 6, 5, 6)) == 0.0

    def test_min_distance(self):
        assert Box(0, 1, 0, 1).min_distance(Box(4, 5, 4, 5)) == pytest.approx(
            (3**2 + 3**2) ** 0.5
        )
        assert Box(0, 2, 0, 2).min_distance(Box(1, 3, 1, 3)) == 0.0

    def test_translated(self):
        assert Box(0, 1, 0, 1).translated(2, -1) == Box(2, 3, -1, 0)

    def test_expanded(self):
        assert Box(0, 1, 0, 1).expanded(1, 2, 3, 4) == Box(-1, 3, -3, 5)


class TestProperties:
    @given(boxes(), boxes())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains(a)
        assert u.contains(b)

    @given(boxes(), boxes())
    def test_intersection_inside_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains(inter)
            assert b.contains(inter)

    @given(boxes(), boxes())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(boxes(), boxes())
    def test_intersects_iff_intersection(self, a, b):
        assert a.intersects(b) == (a.intersection(b) is not None)

    @given(boxes(), boxes())
    def test_enlargement_non_negative(self, a, b):
        assert a.enlargement(b) >= -1e-9

    @given(boxes(), boxes())
    def test_min_distance_zero_iff_intersecting(self, a, b):
        if a.intersects(b):
            assert a.min_distance(b) == 0.0
        else:
            assert a.min_distance(b) > 0.0
