"""Batch kernels agree EXACTLY with the scalar geometry oracle.

The vectorized kernels (:mod:`repro.geometry.kernels`) promise
bit-identical results to the scalar path — not approximately equal,
*equal*: same intervals to the last bit, same candidate pairs, same
ordering.  These tests enforce that promise with hypothesis-generated
boxes (including subnormal velocities and exact-tangency contacts) and
handcrafted degenerate cases: zero-length windows (``t0 == t1``),
touching boundaries, zero velocities, and infinite windows.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    HAVE_NUMPY,
    INF,
    Box,
    KineticBatch,
    KineticBox,
    all_pairs_intersection,
    batch_all_pairs_intersection,
    batch_filter_against,
    batch_intersection_intervals,
    batch_probe_windows,
    batch_ps_intersection,
    batch_select_sweep_dimension,
    batch_sweep_bounds,
    intersection_interval,
    ps_intersection,
    sweep_bounds,
)

from ..conftest import random_kbox

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="kernels need numpy")

# Finite values spanning magnitudes down to subnormals — the regime
# where different float associations actually diverge.
finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
small = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)
tref = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False)


@st.composite
def kboxes(draw):
    """An arbitrary (possibly degenerate, possibly expanding) kinetic box."""
    x0, y0 = draw(finite), draw(finite)
    w, h = draw(st.floats(min_value=0.0, max_value=100.0)), draw(
        st.floats(min_value=0.0, max_value=100.0)
    )
    vxl, vyl = draw(small), draw(small)
    vxh = draw(st.floats(min_value=0.0, max_value=5.0))
    vyh = draw(st.floats(min_value=0.0, max_value=5.0))
    return KineticBox(
        Box(x0, x0 + w, y0, y0 + h),
        Box(vxl, vxl + vxh, vyl, vyl + vyh),
        draw(tref),
    )


@st.composite
def windows(draw):
    """A window ``[t0, t1]`` with t1 >= t0; degenerate t0 == t1 allowed."""
    t0 = draw(st.floats(min_value=0.0, max_value=20.0, allow_nan=False))
    dt = draw(st.floats(min_value=0.0, max_value=30.0, allow_nan=False))
    return t0, t0 + dt


def batch_of(boxes):
    return KineticBatch.from_boxes(list(boxes))


def scalar_window(a, b, t0, t1):
    iv = intersection_interval(a, b, t0, t1)
    return None if iv is None else (iv.start, iv.end)


def assert_grid_matches(boxes_a, boxes_b, t0, t1):
    """The (lo, hi, ok) grid must equal per-pair scalar calls bit-for-bit."""
    lo, hi, ok = batch_intersection_intervals(
        batch_of(boxes_a), batch_of(boxes_b), t0, t1
    )
    for i, a in enumerate(boxes_a):
        for j, b in enumerate(boxes_b):
            expect = scalar_window(a, b, t0, t1)
            if expect is None:
                assert not ok[i, j], (i, j, a, b)
            else:
                assert ok[i, j], (i, j, a, b)
                # Exact equality — the whole point of the shared
                # pre-shifted association.
                assert float(lo[i, j]) == expect[0], (i, j, a, b)
                assert float(hi[i, j]) == expect[1], (i, j, a, b)


class TestPairWindowParity:
    @given(kboxes(), kboxes(), windows())
    @settings(max_examples=300, deadline=None)
    def test_single_pair_exact(self, a, b, window):
        t0, t1 = window
        assert_grid_matches([a], [b], t0, t1)

    @given(kboxes(), kboxes())
    @settings(max_examples=100, deadline=None)
    def test_infinite_window(self, a, b):
        assert_grid_matches([a], [b], 0.0, INF)

    @given(kboxes(), kboxes(), st.floats(min_value=0.0, max_value=20.0))
    @settings(max_examples=100, deadline=None)
    def test_degenerate_window(self, a, b, t):
        assert_grid_matches([a], [b], t, t)

    def test_rejects_inverted_window(self):
        batch = batch_of([random_kbox(random.Random(0))])
        with pytest.raises(ValueError):
            batch_intersection_intervals(batch, batch, 5.0, 4.0)
        with pytest.raises(ValueError):
            intersection_interval(batch.box(0), batch.box(0), 5.0, 4.0)

    def test_touching_boundaries(self):
        # Two static boxes sharing exactly the x = 1 edge: closed-box
        # semantics ⇒ they intersect over the whole window.
        a = KineticBox.rigid(Box(0, 1, 0, 1), 0.0, 0.0, 0.0)
        b = KineticBox.rigid(Box(1, 2, 0, 1), 0.0, 0.0, 0.0)
        assert_grid_matches([a], [b], 0.0, 10.0)
        lo, hi, ok = batch_intersection_intervals(batch_of([a]), batch_of([b]), 0, 10)
        assert ok[0, 0] and float(lo[0, 0]) == 0.0 and float(hi[0, 0]) == 10.0

    def test_zero_velocities_disjoint(self):
        a = KineticBox.rigid(Box(0, 1, 0, 1), 0.0, 0.0, 0.0)
        b = KineticBox.rigid(Box(3, 4, 0, 1), 0.0, 0.0, 0.0)
        _lo, _hi, ok = batch_intersection_intervals(batch_of([a]), batch_of([b]), 0, 10)
        assert not ok[0, 0]
        assert_grid_matches([a], [b], 0.0, 10.0)

    def test_grazing_contact_subnormal_velocity(self):
        # The association-sensitive case: a subnormal velocity whose
        # t_ref shift underflows.  Both paths must make the same call.
        v = 3.703016526847892e-38
        a = KineticBox(Box(0, 1, 0, 0), Box(v, v, 0, 0), 1.0)
        b = KineticBox.rigid(Box(1, 1, 0, 0), 0.0, 0.0, 0.0)
        assert_grid_matches([a], [b], 0.0, 25.0)

    @given(st.lists(kboxes(), min_size=0, max_size=7),
           st.lists(kboxes(), min_size=0, max_size=7), windows())
    @settings(max_examples=60, deadline=None)
    def test_grid_exact(self, boxes_a, boxes_b, window):
        t0, t1 = window
        if boxes_a and boxes_b:
            assert_grid_matches(boxes_a, boxes_b, t0, t1)


class TestSweepBoundsParity:
    @given(kboxes(), windows(), st.integers(min_value=0, max_value=1))
    @settings(max_examples=200, deadline=None)
    def test_finite_window(self, kb, window, dim):
        t0, t1 = window
        lb, ub = batch_sweep_bounds(batch_of([kb]), dim, t0, t1)
        slb, sub = sweep_bounds(kb, dim, t0, t1)
        assert float(lb[0]) == slb and float(ub[0]) == sub

    @given(kboxes(), st.floats(min_value=0, max_value=20),
           st.integers(min_value=0, max_value=1))
    @settings(max_examples=100, deadline=None)
    def test_infinite_window(self, kb, t0, dim):
        lb, ub = batch_sweep_bounds(batch_of([kb]), dim, t0, INF)
        slb, sub = sweep_bounds(kb, dim, t0, INF)
        assert float(lb[0]) == slb and float(ub[0]) == sub


class TestProbeParity:
    """The 1-vs-N probe kernel is exact in *both* role orientations."""

    @given(st.lists(kboxes(), min_size=1, max_size=8), kboxes(), windows())
    @settings(max_examples=100, deadline=None)
    def test_windows_exact_both_orientations(self, boxes, other, window):
        t0, t1 = window
        lo, hi, ok = batch_probe_windows(batch_of(boxes), other, t0, t1)
        for i, kb in enumerate(boxes):
            for a, b in ((kb, other), (other, kb)):
                expect = scalar_window(a, b, t0, t1)
                if expect is None:
                    assert not ok[i], (i, a, b)
                else:
                    assert ok[i], (i, a, b)
                    assert float(lo[i]) == expect[0], (i, a, b)
                    assert float(hi[i]) == expect[1], (i, a, b)

    def test_rejects_inverted_window(self):
        batch = batch_of([random_kbox(random.Random(0))])
        with pytest.raises(ValueError):
            batch_probe_windows(batch, batch.box(0), 5.0, 4.0)


class TestFilterParity:
    @given(st.lists(kboxes(), min_size=1, max_size=10), kboxes(), windows())
    @settings(max_examples=100, deadline=None)
    def test_mask_matches_scalar(self, boxes, other, window):
        t0, t1 = window
        mask = batch_filter_against(batch_of(boxes), other, t0, t1)
        for i, kb in enumerate(boxes):
            assert bool(mask[i]) == (
                intersection_interval(kb, other, t0, t1) is not None
            ), (i, kb, other)


class TestSweepParity:
    """ps/all-pairs kernels return the *same triples in the same order*."""

    def _random_sets(self, seed, n_a, n_b):
        rng = random.Random(seed)
        return (
            [random_kbox(rng) for _ in range(n_a)],
            [random_kbox(rng) for _ in range(n_b)],
        )

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_all_pairs_exact(self, seed):
        boxes_a, boxes_b = self._random_sets(seed, 40, 35)
        ca, ck = [0], [0]
        scalar = all_pairs_intersection(boxes_a, boxes_b, 0, 30, ca, use_kernels=False)
        vector = all_pairs_intersection(boxes_a, boxes_b, 0, 30, ck, use_kernels=True)
        assert ca == ck
        assert [(i, j, iv.start, iv.end) for i, j, iv in scalar] == [
            (i, j, iv.start, iv.end) for i, j, iv in vector
        ]

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("dim", [None, 0, 1])
    def test_ps_exact(self, seed, dim):
        boxes_a, boxes_b = self._random_sets(seed, 45, 40)
        ca, ck = [0], [0]
        scalar = ps_intersection(
            boxes_a, boxes_b, 0, 12, dim=dim, counter=ca, use_kernels=False
        )
        vector = ps_intersection(
            boxes_a, boxes_b, 0, 12, dim=dim, counter=ck, use_kernels=True
        )
        assert ca == ck, "candidate counts diverged"
        assert [(i, j, iv.start, iv.end) for i, j, iv in scalar] == [
            (i, j, iv.start, iv.end) for i, j, iv in vector
        ]

    def test_ps_degenerate_window(self):
        boxes_a, boxes_b = self._random_sets(9, 30, 30)
        scalar = ps_intersection(boxes_a, boxes_b, 5.0, 5.0, use_kernels=False)
        vector = ps_intersection(boxes_a, boxes_b, 5.0, 5.0, use_kernels=True)
        assert [(i, j, iv.start, iv.end) for i, j, iv in scalar] == [
            (i, j, iv.start, iv.end) for i, j, iv in vector
        ]

    def test_empty_sides(self):
        boxes, _ = self._random_sets(3, 5, 0)
        assert ps_intersection(boxes, [], 0, 10, use_kernels=True) == []
        assert ps_intersection([], boxes, 0, 10, use_kernels=True) == []
        assert all_pairs_intersection([], boxes, 0, 10, use_kernels=True) == []


class TestDimensionSelection:
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_matches_scalar_choice(self, seed):
        from repro.geometry import select_sweep_dimension

        boxes_a, boxes_b = (
            [random_kbox(random.Random(seed)) for _ in range(20)],
            [random_kbox(random.Random(seed + 100)) for _ in range(20)],
        )
        scalar = select_sweep_dimension(boxes_a, boxes_b)
        vector = batch_select_sweep_dimension(batch_of(boxes_a), batch_of(boxes_b))
        assert scalar == vector

    def test_speed_sums_cached(self):
        batch = batch_of([random_kbox(random.Random(0)) for _ in range(8)])
        first = batch.speed_sums
        assert batch.speed_sums is first  # computed once, reused


class TestKineticBatch:
    def test_round_trip(self):
        rng = random.Random(42)
        boxes = [random_kbox(rng) for _ in range(10)]
        batch = batch_of(boxes)
        assert len(batch) == 10
        for i, kb in enumerate(boxes):
            assert batch.box(i) == kb

    def test_compress(self):
        rng = random.Random(7)
        boxes = [random_kbox(rng) for _ in range(6)]
        batch = batch_of(boxes)
        import numpy as np

        mask = np.array([True, False, True, False, True, False])
        sub = batch.compress(mask)
        assert len(sub) == 3
        assert [sub.box(k) for k in range(3)] == [boxes[0], boxes[2], boxes[4]]
