"""Tests for plane sweep over moving rectangles."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    Box,
    INF,
    KineticBox,
    all_pairs_intersection,
    intersection_interval,
    ps_intersection,
    select_sweep_dimension,
    sweep_bounds,
)

from ..conftest import random_kbox

speed = st.floats(min_value=-4, max_value=4, allow_nan=False, allow_infinity=False)
pos = st.floats(min_value=-30, max_value=30, allow_nan=False, allow_infinity=False)
ext = st.floats(min_value=0.1, max_value=8.0, allow_nan=False, allow_infinity=False)


@st.composite
def kboxes(draw):
    x, y = draw(pos), draw(pos)
    w, h = draw(ext), draw(ext)
    vx, vy = draw(speed), draw(speed)
    return KineticBox.rigid(Box(x, x + w, y, y + h), vx, vy, draw(
        st.floats(min_value=0, max_value=2, allow_nan=False)
    ))


class TestSweepBounds:
    def test_finite_window(self):
        kb = KineticBox.rigid(Box(0, 1, 0, 1), 2, 0, 0.0)
        lb, ub = sweep_bounds(kb, 0, 0.0, 3.0)
        assert lb == 0.0       # min of lo(0)=0 and lo(3)=6
        assert ub == 7.0       # max of hi(0)=1 and hi(3)=7

    def test_negative_velocity(self):
        kb = KineticBox.rigid(Box(10, 11, 0, 1), -2, 0, 0.0)
        lb, ub = sweep_bounds(kb, 0, 0.0, 3.0)
        assert lb == 4.0
        assert ub == 11.0

    def test_unbounded_window_degenerates(self):
        kb = KineticBox.rigid(Box(0, 1, 0, 1), 2, 0, 0.0)
        lb, ub = sweep_bounds(kb, 0, 0.0, INF)
        assert lb == 0.0
        assert ub == INF
        kb_back = KineticBox.rigid(Box(0, 1, 0, 1), -2, 0, 0.0)
        lb, ub = sweep_bounds(kb_back, 0, 0.0, INF)
        assert lb == -INF
        assert ub == 1.0

    @given(kboxes(), st.floats(min_value=0, max_value=5, allow_nan=False),
           st.floats(min_value=0, max_value=20, allow_nan=False))
    @settings(max_examples=200)
    def test_bounds_bracket_motion(self, kb, t0_off, length):
        t0 = kb.t_ref + t0_off
        t1 = t0 + length
        lb, ub = sweep_bounds(kb, 0, t0, t1)
        for i in range(11):
            t = t0 + (t1 - t0) * i / 10
            assert lb - 1e-9 <= kb.lo(0, t)
            assert kb.hi(0, t) <= ub + 1e-9


class TestDimensionSelection:
    def test_prefers_slow_dimension(self):
        # Entries race along x but crawl along y → sweep on y.
        fast_x = [
            KineticBox.rigid(Box(i, i + 1, 0, 1), 5.0, 0.1, 0.0) for i in range(4)
        ]
        assert select_sweep_dimension(fast_x, fast_x) == 1
        fast_y = [
            KineticBox.rigid(Box(i, i + 1, 0, 1), 0.1, 5.0, 0.0) for i in range(4)
        ]
        assert select_sweep_dimension(fast_y, fast_y) == 0


class TestPSIntersection:
    def _norm(self, triples):
        return sorted(
            (i, j, round(iv.start, 9), round(iv.end, 9)) for i, j, iv in triples
        )

    def test_empty_inputs(self):
        assert ps_intersection([], [], 0.0, 10.0) == []
        kb = KineticBox.rigid(Box(0, 1, 0, 1), 0, 0, 0.0)
        assert ps_intersection([kb], [], 0.0, 10.0) == []

    def test_matches_all_pairs_fuzz(self):
        rng = random.Random(17)
        for trial in range(150):
            boxes_a = [random_kbox(rng) for _ in range(rng.randint(1, 15))]
            boxes_b = [random_kbox(rng) for _ in range(rng.randint(1, 15))]
            t0 = rng.uniform(2, 6)
            t1 = t0 + rng.uniform(0, 25)
            got = self._norm(ps_intersection(boxes_a, boxes_b, t0, t1))
            want = self._norm(all_pairs_intersection(boxes_a, boxes_b, t0, t1))
            assert got == want, trial

    def test_forced_dimension_same_result(self):
        rng = random.Random(3)
        boxes_a = [random_kbox(rng) for _ in range(10)]
        boxes_b = [random_kbox(rng) for _ in range(10)]
        r0 = self._norm(ps_intersection(boxes_a, boxes_b, 2.0, 12.0, dim=0))
        r1 = self._norm(ps_intersection(boxes_a, boxes_b, 2.0, 12.0, dim=1))
        auto = self._norm(ps_intersection(boxes_a, boxes_b, 2.0, 12.0))
        assert r0 == r1 == auto

    def test_counter_counts_fewer_tests_than_all_pairs(self):
        # The whole point of PS: fewer exact tests on sparse data.
        rng = random.Random(5)
        boxes_a = [random_kbox(rng, space=500.0, max_speed=0.5) for _ in range(60)]
        boxes_b = [random_kbox(rng, space=500.0, max_speed=0.5) for _ in range(60)]
        c_ps, c_np = [0], [0]
        ps_intersection(boxes_a, boxes_b, 2.0, 10.0, counter=c_ps)
        all_pairs_intersection(boxes_a, boxes_b, 2.0, 10.0, counter=c_np)
        assert c_np[0] == 3600
        assert c_ps[0] < c_np[0] / 4

    def test_intervals_clipped_to_window(self):
        a = KineticBox.rigid(Box(0, 1, 0, 1), 1, 0, 0.0)
        b = KineticBox.rigid(Box(4, 5, 0, 1), 0, 0, 0.0)
        [(i, j, iv)] = ps_intersection([a], [b], 0.0, 4.0)
        assert (i, j) == (0, 0)
        assert iv.end == pytest.approx(4.0)

    def test_pairwise_against_primitive(self):
        rng = random.Random(8)
        boxes_a = [random_kbox(rng) for _ in range(8)]
        boxes_b = [random_kbox(rng) for _ in range(8)]
        triples = ps_intersection(boxes_a, boxes_b, 2.0, 20.0)
        for i, j, iv in triples:
            direct = intersection_interval(boxes_a[i], boxes_b[j], 2.0, 20.0)
            assert direct is not None
            assert direct.approx_equals(iv)
