"""d-dimensional kinetic primitives: 3-d sampling oracle + 2-d parity."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Box, KineticBox, intersection_interval
from repro.geometry.nd import (
    NdKineticBox,
    intersection_interval_nd,
    sweep_bounds_nd,
)

pos = st.floats(min_value=-30, max_value=30, allow_nan=False)
ext = st.floats(min_value=0.0, max_value=8.0, allow_nan=False)
vel = st.floats(min_value=-4, max_value=4, allow_nan=False)


@st.composite
def nd_boxes(draw, d=3):
    lo = [draw(pos) for _ in range(d)]
    hi = [l + draw(ext) for l in lo]
    v = [draw(vel) for _ in range(d)]
    t_ref = draw(st.floats(min_value=0, max_value=3, allow_nan=False))
    return NdKineticBox.rigid(lo, hi, v, t_ref)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            NdKineticBox((0,), (1, 2), (0,), (0,), 0.0)
        with pytest.raises(ValueError):
            NdKineticBox((), (), (), (), 0.0)
        with pytest.raises(ValueError):
            NdKineticBox((2,), (1,), (0,), (0,), 0.0)
        with pytest.raises(ValueError):
            NdKineticBox((0,), (1,), (1,), (0,), 0.0)

    def test_at(self):
        box = NdKineticBox((0, 0, 0), (1, 1, 1), (1, 0, 0), (1, 0, 0), 0.0)
        lo, hi = box.at(2.0)
        assert lo == (2.0, 0.0, 0.0)
        assert hi == (3.0, 1.0, 1.0)

    def test_union_bounds_children(self):
        rng = random.Random(4)
        for _ in range(50):
            a = NdKineticBox.rigid(
                [rng.uniform(0, 10) for _ in range(3)],
                [rng.uniform(10, 20) for _ in range(3)],
                [rng.uniform(-2, 2) for _ in range(3)],
                0.0,
            )
            b = NdKineticBox.rigid(
                [rng.uniform(0, 10) for _ in range(3)],
                [rng.uniform(10, 20) for _ in range(3)],
                [rng.uniform(-2, 2) for _ in range(3)],
                0.0,
            )
            u = a.union(b, 0.0)
            for t in (0.0, 3.0, 11.0):
                u_lo, u_hi = u.at(t)
                for child in (a, b):
                    c_lo, c_hi = child.at(t)
                    for d in range(3):
                        assert u_lo[d] <= c_lo[d] + 1e-9
                        assert c_hi[d] <= u_hi[d] + 1e-9

    def test_dimensionality_mismatch(self):
        a = NdKineticBox.rigid((0,), (1,), (0,), 0.0)
        b = NdKineticBox.rigid((0, 0), (1, 1), (0, 0), 0.0)
        with pytest.raises(ValueError):
            intersection_interval_nd(a, b, 0.0)
        with pytest.raises(ValueError):
            a.union(b, 0.0)


class Test3dIntersection:
    @given(nd_boxes(), nd_boxes())
    @settings(max_examples=200, deadline=None)
    def test_matches_dense_sampling(self, a, b):
        t0, t1 = 0.0, 15.0
        iv = intersection_interval_nd(a, b, t0, t1)
        for i in range(101):
            t = t0 + (t1 - t0) * i / 100
            static = a.intersects_at(b, t)
            predicted = iv is not None and iv.start - 1e-7 <= t <= iv.end + 1e-7
            if static != predicted:
                near_edge = iv is not None and (
                    min(abs(t - iv.start), abs(t - iv.end)) < 1e-6
                )
                # Or within the touch tolerance.
                a_lo, a_hi = a.at(t)
                b_lo, b_hi = b.at(t)
                gap = max(
                    max(bl - ah, al - bh, 0.0)
                    for al, ah, bl, bh in zip(a_lo, a_hi, b_lo, b_hi)
                )
                assert near_edge or gap < 1e-6, (a, b, t, iv)

    def test_known_3d_case(self):
        a = NdKineticBox.rigid((0, 0, 0), (1, 1, 1), (1, 0, 0), 0.0)
        b = NdKineticBox.rigid((4, 0, 0), (5, 1, 1), (0, 0, 0), 0.0)
        iv = intersection_interval_nd(a, b, 0.0)
        assert iv.start == pytest.approx(3.0)
        assert iv.end == pytest.approx(5.0)
        # Separate them along z: never intersect.
        c = NdKineticBox.rigid((4, 0, 9), (5, 1, 10), (0, 0, 0), 0.0)
        assert intersection_interval_nd(a, c, 0.0) is None


class Test2dParity:
    @given(nd_boxes(d=2), nd_boxes(d=2))
    @settings(max_examples=200, deadline=None)
    def test_agrees_with_2d_implementation(self, a, b):
        ka = KineticBox.rigid(
            Box(a.lo[0], a.hi[0], a.lo[1], a.hi[1]), a.v_lo[0], a.v_lo[1], a.t_ref
        )
        kb = KineticBox.rigid(
            Box(b.lo[0], b.hi[0], b.lo[1], b.hi[1]), b.v_lo[0], b.v_lo[1], b.t_ref
        )
        nd = intersection_interval_nd(a, b, 0.0, 25.0)
        two_d = intersection_interval(ka, kb, 0.0, 25.0)
        if (nd is None) != (two_d is None):
            # The two implementations associate the constant term
            # differently (1-ulp difference), so an exact tangency can
            # be found by one and missed by the other.  Admissible only
            # for (near-)degenerate grazing contacts.
            found = nd if nd is not None else two_d
            assert found.duration < 1e-6, (a, b, nd, two_d)
            t = found.start
            assert ka.at(t).min_distance(kb.at(t)) < 1e-6
        elif nd is not None:
            assert nd.approx_equals(two_d, tol=1e-6)


class TestSweepBounds:
    def test_finite_window(self):
        box = NdKineticBox.rigid((0, 0, 0), (1, 1, 1), (2, 0, -1), 0.0)
        assert sweep_bounds_nd(box, 0, 0.0, 3.0) == (0.0, 7.0)
        assert sweep_bounds_nd(box, 2, 0.0, 3.0) == (-3.0, 1.0)

    def test_bracket_property(self):
        rng = random.Random(6)
        for _ in range(100):
            box = NdKineticBox.rigid(
                [rng.uniform(0, 10) for _ in range(3)],
                [rng.uniform(10, 20) for _ in range(3)],
                [rng.uniform(-3, 3) for _ in range(3)],
                rng.uniform(0, 2),
            )
            t0 = rng.uniform(2, 4)
            t1 = t0 + rng.uniform(0, 10)
            for d in range(3):
                lb, ub = sweep_bounds_nd(box, d, t0, t1)
                for i in range(6):
                    t = t0 + (t1 - t0) * i / 5
                    lo, hi = box.at(t)
                    assert lb - 1e-9 <= lo[d]
                    assert hi[d] <= ub + 1e-9
