"""Property tests: interval algebra laws and intersection edge cases.

Complements ``test_intersection.py`` (which pins the dense-sampling
oracle for *rigid* movers) with three things it does not cover: the
algebraic laws of :class:`TimeInterval` / :func:`merge_intervals`, the
sampling oracle for *deforming* kinetic boxes whose lower and upper
bounds move at different speeds, and the exact regression example for
the subnormal-slope overflow where ``-c / m`` rounds to ``+inf``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    INF,
    Box,
    KineticBox,
    TimeInterval,
    all_pairs_intersection,
    intersection_interval,
    merge_intervals,
)
from repro.geometry.kernels import KineticBatch, batch_filter_against

finite_t = st.floats(min_value=-50, max_value=50, allow_nan=False)
end_t = st.one_of(finite_t, st.just(INF))


@st.composite
def intervals(draw):
    start = draw(finite_t)
    end = draw(end_t)
    if end < start:
        start, end = end, start
    return TimeInterval(start, end)


@st.composite
def deforming_kboxes(draw):
    """Kinetic boxes whose bounds drift apart (vlo <= vhi per axis)."""
    x = draw(st.floats(min_value=-30, max_value=30, allow_nan=False))
    y = draw(st.floats(min_value=-30, max_value=30, allow_nan=False))
    w = draw(st.floats(min_value=0, max_value=8, allow_nan=False))
    h = draw(st.floats(min_value=0, max_value=8, allow_nan=False))
    vels = []
    for _ in range(2):
        v1 = draw(st.floats(min_value=-3, max_value=3, allow_nan=False))
        v2 = draw(st.floats(min_value=-3, max_value=3, allow_nan=False))
        vels.append((min(v1, v2), max(v1, v2)))
    (vxlo, vxhi), (vylo, vyhi) = vels
    return KineticBox(Box(x, x + w, y, y + h), Box(vxlo, vxhi, vylo, vyhi), 0.0)


class TestIntervalAlgebra:
    @given(intervals(), intervals())
    def test_intersect_commutes(self, p, q):
        assert p.intersect(q) == q.intersect(p)
        assert p.overlaps(q) == q.overlaps(p)
        assert p.union(q) == q.union(p)

    @given(intervals(), intervals(), intervals())
    def test_intersect_associates(self, p, q, r):
        def chain(x, y, z):
            pq = x.intersect(y)
            return None if pq is None else pq.intersect(z)

        assert chain(p, q, r) == chain(r, q, p)

    @given(intervals(), intervals())
    def test_intersection_is_contained_in_both(self, p, q):
        got = p.intersect(q)
        if got is None:
            assert not p.overlaps(q)
        else:
            assert p.contains_interval(got) and q.contains_interval(got)
            assert p.overlaps(q)

    @given(intervals(), finite_t)
    def test_membership_splits_on_intersection(self, p, t):
        window = TimeInterval(t - 1.0, t + 1.0)
        both = p.intersect(window)
        assert (both is not None and both.contains(t)) == p.contains(t)

    @given(intervals(), intervals())
    def test_union_when_defined_is_tight(self, p, q):
        got = p.union(q)
        if got is None:
            assert not p.overlaps(q)
        else:
            assert got.start == min(p.start, q.start)
            assert got.end == max(p.end, q.end)
            assert got.contains_interval(p) and got.contains_interval(q)

    @given(intervals())
    def test_clamp_is_intersection_with_window(self, p):
        assert p.clamp(-10.0, 10.0) == p.intersect(TimeInterval(-10.0, 10.0))

    @given(st.lists(intervals(), max_size=12))
    def test_merge_is_sorted_disjoint_and_idempotent(self, items):
        merged = merge_intervals(items)
        for prev, cur in zip(merged, merged[1:]):
            assert prev.end < cur.start, "merged output must be disjoint"
        assert merge_intervals(merged) == merged

    @given(st.lists(intervals(), min_size=1, max_size=12), finite_t)
    def test_merge_preserves_membership(self, items, t):
        before = any(iv.contains(t) for iv in items)
        after = any(iv.contains(t) for iv in merge_intervals(items))
        # Merging may only add points inside tolerance-closed gaps.
        if before:
            assert after


class TestDeformingBoxes:
    @given(deforming_kboxes(), deforming_kboxes())
    @settings(max_examples=200, deadline=None)
    def test_matches_dense_sampling(self, a, b):
        t0, t1 = 0.0, 15.0
        iv = intersection_interval(a, b, t0, t1)
        samples = 120
        for i in range(samples + 1):
            t = t0 + (t1 - t0) * i / samples
            static = a.at(t).intersects(b.at(t))
            predicted = iv is not None and iv.start - 1e-7 <= t <= iv.end + 1e-7
            if static != predicted:
                nearly_touching = a.at(t).min_distance(b.at(t)) < 1e-6
                near_edge = iv is not None and (
                    min(abs(t - iv.start), abs(t - iv.end)) < 1e-6
                )
                assert near_edge or nearly_touching, (a, b, t, iv)

    @given(deforming_kboxes(), deforming_kboxes(),
           st.floats(min_value=0, max_value=10, allow_nan=False),
           st.floats(min_value=0, max_value=10, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_window_clamping_monotone(self, a, b, lo_shift, width):
        wide = intersection_interval(a, b, 0.0, 30.0)
        lo = lo_shift
        hi = min(30.0, lo + width)
        narrow = intersection_interval(a, b, lo, hi)
        if narrow is not None:
            assert wide is not None
            assert wide.start <= narrow.start + 1e-9
            assert wide.end >= narrow.end - 1e-9
            # The narrow answer is exactly the wide one clipped.
            clipped = wide.intersect(TimeInterval(lo, hi))
            assert clipped is not None
            assert narrow.approx_equals(clipped, tol=1e-9)


class TestSubnormalSlopeRegression:
    """``-c / m`` overflowing to ``+inf`` must mean "never", not crash.

    A velocity-bound difference of one ULP (5e-324) once made
    ``_le_zero_window`` return a window starting at ``+inf``, which
    :class:`TimeInterval` rejects with ``ValueError``.  The separating
    gap can never close at that closing speed, so the primitive must
    report no intersection — in the scalar path and both kernel paths.
    """

    A = KineticBox(Box(10.0, 11.0, 0.0, 1.0), Box(0.0, 0.0, 0.0, 0.0), 0.0)
    B = KineticBox(Box(0.0, 1.0, 0.0, 1.0), Box(0.0, 5e-324, 0.0, 0.0), 0.0)

    def test_scalar_path(self):
        assert intersection_interval(self.A, self.B, 0.0) is None
        assert intersection_interval(self.B, self.A, 0.0) is None
        assert intersection_interval(self.A, self.B, 0.0, 1e12) is None

    def test_all_pairs_kernel(self):
        for use_kernels in (False, True):
            assert all_pairs_intersection(
                [self.A], [self.B], 0.0, INF, use_kernels=use_kernels
            ) == []

    def test_probe_kernel(self):
        batch = KineticBatch.from_boxes([self.B])
        mask = batch_filter_against(batch, self.A, 0.0, INF)
        assert not mask.any()
