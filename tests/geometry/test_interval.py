"""Unit and property tests for the time-interval algebra."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import INF, TimeInterval, merge_intervals

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def intervals(allow_unbounded: bool = True):
    def build(draw_tuple):
        start, length, unbounded = draw_tuple
        end = INF if (unbounded and allow_unbounded) else start + abs(length)
        return TimeInterval(start, end)

    return st.tuples(finite, finite, st.booleans()).map(build)


class TestConstruction:
    def test_valid(self):
        iv = TimeInterval(1.0, 2.5)
        assert iv.start == 1.0
        assert iv.end == 2.5

    def test_degenerate_allowed(self):
        iv = TimeInterval(3.0, 3.0)
        assert iv.duration == 0.0
        assert iv.contains(3.0)

    def test_unbounded(self):
        iv = TimeInterval(0.0, INF)
        assert iv.is_unbounded
        assert iv.duration == INF
        assert iv.contains(1e18)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TimeInterval(2.0, 1.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            TimeInterval(math.nan, 1.0)
        with pytest.raises(ValueError):
            TimeInterval(0.0, math.nan)

    def test_start_at_inf_rejected(self):
        with pytest.raises(ValueError):
            TimeInterval(INF, INF)

    def test_immutable(self):
        iv = TimeInterval(0.0, 1.0)
        with pytest.raises(AttributeError):
            iv.start = 5.0

    def test_repr_and_iter(self):
        iv = TimeInterval(1.0, INF)
        assert "INF" in repr(iv)
        assert tuple(iv) == (1.0, INF)


class TestPredicates:
    def test_contains_boundaries(self):
        iv = TimeInterval(1.0, 4.0)
        assert iv.contains(1.0)
        assert iv.contains(4.0)
        assert not iv.contains(0.999)
        assert not iv.contains(4.001)

    def test_contains_interval(self):
        outer = TimeInterval(0.0, 10.0)
        assert outer.contains_interval(TimeInterval(2.0, 8.0))
        assert outer.contains_interval(outer)
        assert not outer.contains_interval(TimeInterval(2.0, 11.0))

    def test_overlaps_touching(self):
        assert TimeInterval(0, 2).overlaps(TimeInterval(2, 5))
        assert not TimeInterval(0, 2).overlaps(TimeInterval(2.0001, 5))


class TestAlgebra:
    def test_intersect(self):
        assert TimeInterval(1, 4).intersect(TimeInterval(3, 9)) == TimeInterval(3, 4)
        assert TimeInterval(1, 2).intersect(TimeInterval(3, 4)) is None

    def test_intersect_touching_gives_degenerate(self):
        assert TimeInterval(0, 2).intersect(TimeInterval(2, 5)) == TimeInterval(2, 2)

    def test_union(self):
        assert TimeInterval(0, 2).union(TimeInterval(1, 5)) == TimeInterval(0, 5)
        assert TimeInterval(0, 1).union(TimeInterval(2, 3)) is None

    def test_clamp(self):
        assert TimeInterval(0, 10).clamp(3, 5) == TimeInterval(3, 5)
        assert TimeInterval(0, 10).clamp(11, 12) is None

    def test_shift(self):
        assert TimeInterval(1, 2).shift(3) == TimeInterval(4, 5)

    def test_equality_and_hash(self):
        assert TimeInterval(1, 2) == TimeInterval(1, 2)
        assert hash(TimeInterval(1, 2)) == hash(TimeInterval(1, 2))
        assert TimeInterval(1, 2) != TimeInterval(1, 3)

    def test_approx_equals(self):
        assert TimeInterval(1, 2).approx_equals(TimeInterval(1 + 1e-12, 2))
        assert TimeInterval(0, INF).approx_equals(TimeInterval(0, INF))
        assert not TimeInterval(0, INF).approx_equals(TimeInterval(0, 1e18))


class TestProperties:
    @given(intervals(), intervals())
    def test_intersection_commutative(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(intervals(), intervals())
    def test_intersection_subset(self, a, b):
        inter = a.intersect(b)
        if inter is not None:
            assert a.contains_interval(inter)
            assert b.contains_interval(inter)

    @given(intervals(), intervals())
    def test_overlap_iff_intersection(self, a, b):
        assert a.overlaps(b) == (a.intersect(b) is not None)

    @given(intervals(allow_unbounded=False), finite)
    def test_membership_matches_intersection(self, iv, t):
        point = TimeInterval(t, t)
        assert iv.contains(t) == (iv.intersect(point) is not None)


class TestMerge:
    def test_merges_overlapping(self):
        assert merge_intervals(
            [TimeInterval(5, 9), TimeInterval(1, 5)]
        ) == [TimeInterval(1, 9)]

    def test_keeps_disjoint(self):
        merged = merge_intervals([TimeInterval(0, 1), TimeInterval(3, 4)])
        assert merged == [TimeInterval(0, 1), TimeInterval(3, 4)]

    def test_empty(self):
        assert merge_intervals([]) == []

    def test_unbounded_swallows(self):
        merged = merge_intervals([TimeInterval(0, INF), TimeInterval(5, 7)])
        assert merged == [TimeInterval(0, INF)]

    @given(st.lists(intervals(allow_unbounded=False), max_size=12), finite)
    def test_merge_preserves_membership(self, ivs, t):
        # With zero tolerance the merge is exact: membership of any
        # timestamp is unchanged.  (The default tolerance deliberately
        # fuses near-touching intervals, which can add epsilon slivers.)
        before = any(iv.contains(t) for iv in ivs)
        after = any(iv.contains(t) for iv in merge_intervals(ivs, tol=0.0))
        assert before == after

    @given(st.lists(intervals(allow_unbounded=False), max_size=12))
    def test_merge_output_disjoint_and_sorted(self, ivs):
        merged = merge_intervals(ivs, tol=0.0)
        for first, second in zip(merged, merged[1:]):
            assert first.end < second.start
