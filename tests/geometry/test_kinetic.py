"""Unit and property tests for kinetic (moving) boxes."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Box, INF, KineticBox

from ..conftest import random_kbox

small = st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False)
ext = st.floats(min_value=0.0, max_value=20.0, allow_nan=False, allow_infinity=False)
speed = st.floats(min_value=-5, max_value=5, allow_nan=False, allow_infinity=False)
tval = st.floats(min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False)


@st.composite
def rigid_kboxes(draw):
    x = draw(small)
    y = draw(small)
    w = draw(ext)
    h = draw(ext)
    vx = draw(speed)
    vy = draw(speed)
    t_ref = draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
    return KineticBox.rigid(Box(x, x + w, y, y + h), vx, vy, t_ref)


class TestEvaluation:
    def test_rigid_translation(self):
        kb = KineticBox.rigid(Box(0, 1, 0, 1), 1, -0.5, 0.0)
        assert kb.at(4.0) == Box(4, 5, -2, -1)

    def test_moving_point(self):
        kb = KineticBox.moving_point(2, 3, 1, 1, 1.0)
        assert kb.at(3.0) == Box.point(4, 5)

    def test_bounds_per_dimension(self):
        kb = KineticBox(Box(0, 2, 0, 3), Box(-1, 1, 0, 2), 0.0)
        assert kb.lo(0, 2.0) == -2
        assert kb.hi(0, 2.0) == 4
        assert kb.lo(1, 2.0) == 0
        assert kb.hi(1, 2.0) == 7

    def test_with_reference(self):
        kb = KineticBox.rigid(Box(0, 1, 0, 1), 2, 0, 0.0)
        moved = kb.with_reference(3.0)
        assert moved.t_ref == 3.0
        assert moved.at(5.0) == kb.at(5.0)

    def test_params_roundtrip(self):
        kb = KineticBox(Box(1, 2, 3, 4), Box(-1, 1, -2, 2), 7.5)
        assert KineticBox.from_params(kb.params()) == kb
        with pytest.raises(ValueError):
            KineticBox.from_params((1.0, 2.0))

    def test_immutable(self):
        kb = KineticBox.rigid(Box(0, 1, 0, 1), 0, 0, 0.0)
        with pytest.raises(AttributeError):
            kb.t_ref = 5.0


class TestUnion:
    def test_union_requires_input(self):
        with pytest.raises(ValueError):
            KineticBox.union_at(0.0, [])

    @given(st.lists(rigid_kboxes(), min_size=1, max_size=6), tval, tval)
    @settings(max_examples=200)
    def test_union_bounds_children_forever(self, children, t_ref_off, dt):
        t_ref = max(c.t_ref for c in children) + t_ref_off
        union = KineticBox.union_at(t_ref, children)
        t = t_ref + dt
        ubox = union.at(t).expanded(1e-6, 1e-6, 1e-6, 1e-6)
        for child in children:
            assert ubox.contains(child.at(t))

    def test_contains_at_and_bounds_over(self):
        parent = KineticBox(Box(0, 10, 0, 10), Box(-1, 1, -1, 1), 0.0)
        child = KineticBox.rigid(Box(4, 5, 4, 5), 0.5, -0.5, 0.0)
        assert parent.contains_at(child, 0.0)
        assert parent.bounds_over(child, 0.0, 8.0)
        assert parent.bounds_over(child, 0.0, INF)

    def test_bounds_over_fails_on_faster_child(self):
        parent = KineticBox(Box(0, 10, 0, 10), Box(0, 0, 0, 0), 0.0)
        child = KineticBox.rigid(Box(4, 5, 4, 5), 3.0, 0, 0.0)
        assert parent.bounds_over(child, 0.0, 1.0)
        assert not parent.bounds_over(child, 0.0, 10.0)
        assert not parent.bounds_over(child, 0.0, INF)


class TestIntegratedArea:
    def test_static_box(self):
        kb = KineticBox.rigid(Box(0, 2, 0, 3), 1, 1, 0.0)
        # Rigid box: area constant 6, integral over [0, 5] = 30.
        assert kb.integrated_area(0, 5) == pytest.approx(30.0)

    def test_growing_box_closed_form(self):
        kb = KineticBox(Box(0, 2, 0, 3), Box(-0.5, 0.5, -1, 1), 0.0)
        # w(t) = 2 + t, h(t) = 3 + 2t; ∫₀²(2+t)(3+2t)dt = 12 + 14 + 16/3.
        assert kb.integrated_area(0, 2) == pytest.approx(12 + 14 + 16 / 3)

    def test_zero_length_interval(self):
        kb = KineticBox.rigid(Box(0, 1, 0, 1), 0, 0, 0.0)
        assert kb.integrated_area(3, 3) == 0.0

    def test_reversed_interval_rejected(self):
        kb = KineticBox.rigid(Box(0, 1, 0, 1), 0, 0, 0.0)
        with pytest.raises(ValueError):
            kb.integrated_area(2, 1)

    def test_shrinking_vbr_unconstructible(self):
        # A bound whose extent shrinks (v_lo > v_hi) cannot even be
        # built: Box enforces lo <= hi, so the clamping branch of
        # integrated_area is purely defensive.
        with pytest.raises(ValueError):
            KineticBox(Box(0, 1, 0, 1), Box(0.5, -0.5, 0, 0), 0.0)

    def test_degenerate_extent_zero_area(self):
        kb = KineticBox(Box(0, 0, 0, 5), Box(0, 0, 0, 0), 0.0)
        assert kb.integrated_area(0, 10) == 0.0

    @given(rigid_kboxes(), tval, tval)
    @settings(max_examples=100)
    def test_matches_numeric_integration(self, kb, t0_off, length):
        t0 = kb.t_ref + t0_off
        t1 = t0 + length
        exact = kb.integrated_area(t0, t1)
        steps = 400
        dt = (t1 - t0) / steps if steps else 0
        numeric = sum(
            kb.area_at(t0 + (i + 0.5) * dt) * dt for i in range(steps)
        )
        assert exact == pytest.approx(numeric, rel=1e-2, abs=1e-6)

    def test_union_enlargement_non_negative(self):
        rng = random.Random(7)
        for _ in range(100):
            a = random_kbox(rng)
            b = random_kbox(rng)
            t0 = max(a.t_ref, b.t_ref)
            assert a.integrated_union_enlargement(b, t0, t0 + 10) >= -1e-6


class TestSpeedSum:
    def test_rigid(self):
        kb = KineticBox.rigid(Box(0, 1, 0, 1), 3, -2, 0.0)
        assert kb.speed_sum(0) == 6
        assert kb.speed_sum(1) == 4

    def test_bounding(self):
        kb = KineticBox(Box(0, 1, 0, 1), Box(-1, 2, 0, 0), 0.0)
        assert kb.speed_sum(0) == 3
        assert kb.speed_sum(1) == 0
