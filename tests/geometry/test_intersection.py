"""Tests for the moving-rectangle intersection primitive.

The key oracle: :func:`intersection_interval` must agree with dense time
sampling of the static intersection test at every sampled instant.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    Box,
    INF,
    KineticBox,
    first_contact_time,
    intersection_interval,
    intersects_during,
)

from ..conftest import random_kbox

speed = st.floats(min_value=-4, max_value=4, allow_nan=False, allow_infinity=False)
pos = st.floats(min_value=-40, max_value=40, allow_nan=False, allow_infinity=False)
ext = st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False)


@st.composite
def kboxes(draw):
    x = draw(pos)
    y = draw(pos)
    w = draw(ext)
    h = draw(ext)
    vx = draw(speed)
    vy = draw(speed)
    t_ref = draw(st.floats(min_value=0, max_value=3, allow_nan=False))
    return KineticBox.rigid(Box(x, x + w, y, y + h), vx, vy, t_ref)


class TestKnownCases:
    def test_approaching(self):
        a = KineticBox.rigid(Box(0, 1, 0, 1), 1, 0, 0.0)
        b = KineticBox.rigid(Box(4, 5, 0, 1), 0, 0, 0.0)
        iv = intersection_interval(a, b, 0.0)
        assert iv.start == pytest.approx(3.0)
        assert iv.end == pytest.approx(5.0)

    def test_window_clipping(self):
        a = KineticBox.rigid(Box(0, 1, 0, 1), 1, 0, 0.0)
        b = KineticBox.rigid(Box(4, 5, 0, 1), 0, 0, 0.0)
        iv = intersection_interval(a, b, 0.0, 4.0)
        assert (iv.start, iv.end) == (pytest.approx(3.0), pytest.approx(4.0))
        assert intersection_interval(a, b, 0.0, 2.0) is None
        assert intersection_interval(a, b, 6.0, 10.0) is None

    def test_always_intersecting(self):
        a = KineticBox.rigid(Box(0, 10, 0, 10), 1, 1, 0.0)
        b = KineticBox.rigid(Box(2, 3, 2, 3), 1, 1, 0.0)
        iv = intersection_interval(a, b, 0.0)
        assert iv.start == 0.0
        assert iv.end == INF

    def test_diverging(self):
        a = KineticBox.rigid(Box(0, 1, 0, 1), -1, 0, 0.0)
        b = KineticBox.rigid(Box(4, 5, 0, 1), 1, 0, 0.0)
        assert intersection_interval(a, b, 0.0) is None

    def test_y_separated(self):
        a = KineticBox.rigid(Box(0, 1, 0, 1), 1, 0, 0.0)
        b = KineticBox.rigid(Box(4, 5, 50, 51), 0, 0, 0.0)
        assert intersection_interval(a, b, 0.0) is None

    def test_different_reference_times(self):
        # b is described as of t=2 but its motion covers all t.
        a = KineticBox.rigid(Box(0, 1, 0, 1), 1, 0, 0.0)
        b = KineticBox.rigid(Box(4, 5, 0, 1), 0, 0, 2.0)
        iv = intersection_interval(a, b, 0.0)
        assert iv.start == pytest.approx(3.0)

    def test_touching_counts(self):
        a = KineticBox.rigid(Box(0, 1, 0, 1), 0, 0, 0.0)
        b = KineticBox.rigid(Box(1, 2, 0, 1), 0, 0, 0.0)
        iv = intersection_interval(a, b, 0.0, 10.0)
        assert iv == intersection_interval(b, a, 0.0, 10.0)
        assert iv.start == 0.0

    def test_invalid_window(self):
        a = KineticBox.rigid(Box(0, 1, 0, 1), 0, 0, 0.0)
        with pytest.raises(ValueError):
            intersection_interval(a, a, 5.0, 4.0)

    def test_helpers(self):
        a = KineticBox.rigid(Box(0, 1, 0, 1), 1, 0, 0.0)
        b = KineticBox.rigid(Box(4, 5, 0, 1), 0, 0, 0.0)
        assert intersects_during(a, b, 0.0)
        assert not intersects_during(a, b, 6.0, 7.0)
        assert first_contact_time(a, b, 0.0) == pytest.approx(3.0)
        assert first_contact_time(a, b, 6.0) is None


class TestAgainstSampling:
    @given(kboxes(), kboxes())
    @settings(max_examples=300, deadline=None)
    def test_matches_dense_sampling(self, a, b):
        t0, t1 = 0.0, 20.0
        iv = intersection_interval(a, b, t0, t1)
        samples = 200
        eps = 1e-7
        for i in range(samples + 1):
            t = t0 + (t1 - t0) * i / samples
            static = a.at(t).intersects(b.at(t))
            predicted = iv is not None and iv.start - eps <= t <= iv.end + eps
            if static != predicted:
                # Disagreement is only admissible (a) within rounding
                # distance of the computed interval's endpoints, or
                # (b) when the boxes are within the primitive's touch
                # tolerance of each other (deliberate closed-set slack).
                nearly_touching = a.at(t).min_distance(b.at(t)) < 1e-6
                near_edge = iv is not None and (
                    min(abs(t - iv.start), abs(t - iv.end)) < 1e-6
                )
                assert near_edge or nearly_touching, (a, b, t, iv, static, predicted)

    @given(kboxes(), kboxes())
    @settings(max_examples=150, deadline=None)
    def test_symmetric(self, a, b):
        iv_ab = intersection_interval(a, b, 0.0, 30.0)
        iv_ba = intersection_interval(b, a, 0.0, 30.0)
        assert (iv_ab is None) == (iv_ba is None)
        if iv_ab is not None:
            assert iv_ab.approx_equals(iv_ba, tol=1e-9)

    @given(kboxes(), kboxes())
    @settings(max_examples=150, deadline=None)
    def test_window_monotone(self, a, b):
        # Shrinking the window can only shrink the interval.
        wide = intersection_interval(a, b, 0.0, 40.0)
        narrow = intersection_interval(a, b, 10.0, 30.0)
        if narrow is not None:
            assert wide is not None
            assert wide.start <= narrow.start + 1e-9
            assert wide.end >= narrow.end - 1e-9

    def test_unbounded_agrees_with_long_window(self):
        rng = random.Random(99)
        for _ in range(200):
            a = random_kbox(rng)
            b = random_kbox(rng)
            unbounded = intersection_interval(a, b, 2.0)
            long_win = intersection_interval(a, b, 2.0, 1e7)
            if unbounded is None:
                assert long_win is None
            elif unbounded.end < 1e6:
                assert long_win is not None
                assert unbounded.approx_equals(long_win, tol=1e-6)
