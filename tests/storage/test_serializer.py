"""Tests for struct writers/readers and the identity codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage import BytesCodec, StructReader, StructWriter

f64s = st.floats(allow_nan=False, width=64)
i64s = st.integers(min_value=-(2**63), max_value=2**63 - 1)
u8s = st.integers(min_value=0, max_value=255)


class TestRoundTrips:
    def test_mixed_sequence(self):
        w = StructWriter()
        w.write_u8(7)
        w.write_i64(-123456789)
        w.write_f64(3.14159)
        w.write_f64s([1.0, 2.0, 3.0])
        r = StructReader(w.getvalue())
        assert r.read_u8() == 7
        assert r.read_i64() == -123456789
        assert r.read_f64() == pytest.approx(3.14159)
        assert r.read_f64s(3) == [1.0, 2.0, 3.0]
        assert r.remaining == 0

    def test_len_tracks_bytes(self):
        w = StructWriter()
        w.write_u8(1)
        w.write_i64(2)
        w.write_f64(3.0)
        assert len(w) == 1 + 8 + 8

    @given(st.lists(f64s, max_size=30))
    def test_f64s_roundtrip(self, values):
        w = StructWriter()
        w.write_f64s(values)
        r = StructReader(w.getvalue())
        assert r.read_f64s(len(values)) == values

    @given(i64s, u8s, f64s)
    def test_scalar_roundtrip(self, i, u, f):
        w = StructWriter()
        w.write_i64(i)
        w.write_u8(u)
        w.write_f64(f)
        r = StructReader(w.getvalue())
        assert (r.read_i64(), r.read_u8(), r.read_f64()) == (i, u, f)

    def test_infinity_survives(self):
        w = StructWriter()
        w.write_f64(float("inf"))
        assert StructReader(w.getvalue()).read_f64() == float("inf")


class TestBytesCodec:
    def test_identity(self):
        codec = BytesCodec()
        assert codec.decode(codec.encode(b"abc")) == b"abc"

    def test_copies(self):
        codec = BytesCodec()
        data = bytearray(b"xyz")
        encoded = codec.encode(bytes(data))
        data[0] = ord("q")
        assert encoded == b"xyz"
