"""Tests for the LRU buffer pool, including a reference-model fuzz."""

import random

import pytest

from repro.storage import BufferPool, BytesCodec, DiskManager


def make_pool(capacity=3):
    disk = DiskManager()
    pool = BufferPool(disk, BytesCodec(), capacity=capacity)
    return disk, pool


class TestBasics:
    def test_put_get_hit(self):
        disk, pool = make_pool()
        pid = disk.allocate()
        pool.put(pid, b"x")
        assert pool.get(pid) == b"x"
        assert disk.tracker.page_reads == 0  # never touched disk
        assert pool.hits == 1

    def test_miss_reads_disk(self):
        disk, pool = make_pool()
        pid = disk.allocate()
        disk.write_page(pid, b"cold")
        assert pool.get(pid) == b"cold"
        assert disk.tracker.page_reads == 1
        assert pool.misses == 1
        pool.get(pid)
        assert disk.tracker.page_reads == 1  # second access hits

    def test_invalid_capacity(self):
        disk = DiskManager()
        with pytest.raises(ValueError):
            BufferPool(disk, BytesCodec(), capacity=0)

    def test_contains_and_len(self):
        disk, pool = make_pool()
        pid = disk.allocate()
        pool.put(pid, b"x")
        assert pid in pool
        assert len(pool) == 1


class TestEviction:
    def test_lru_evicts_oldest(self):
        disk, pool = make_pool(capacity=2)
        p1, p2, p3 = disk.allocate(), disk.allocate(), disk.allocate()
        pool.put(p1, b"1")
        pool.put(p2, b"2")
        pool.get(p1)          # p1 is now more recent than p2
        pool.put(p3, b"3")    # evicts p2
        assert p2 not in pool
        assert p1 in pool and p3 in pool

    def test_dirty_eviction_writes_back(self):
        disk, pool = make_pool(capacity=1)
        p1, p2 = disk.allocate(), disk.allocate()
        pool.put(p1, b"dirty")
        pool.put(p2, b"next")      # evicts p1 → must write it
        assert disk.tracker.page_writes == 1
        assert disk.read_page(p1) == b"dirty"

    def test_clean_eviction_is_free(self):
        disk, pool = make_pool(capacity=1)
        p1, p2 = disk.allocate(), disk.allocate()
        disk.write_page(p1, b"a")
        disk.write_page(p2, b"b")
        writes_before = disk.tracker.page_writes
        pool.get(p1)
        pool.get(p2)               # evicts clean p1 — no write-back
        assert disk.tracker.page_writes == writes_before

    def test_eviction_of_deallocated_page_skips_writeback(self):
        disk, pool = make_pool(capacity=1)
        p1, p2 = disk.allocate(), disk.allocate()
        pool.put(p1, b"gone")
        disk.deallocate(p1)
        pool.put(p2, b"next")  # eviction of p1 must not explode
        assert disk.tracker.page_writes == 0


class TestMaintenance:
    def test_flush_writes_all_dirty(self):
        disk, pool = make_pool(capacity=4)
        pids = [disk.allocate() for _ in range(3)]
        for pid in pids:
            pool.put(pid, b"d")
        assert pool.flush() == 3
        assert pool.flush() == 0  # now clean
        for pid in pids:
            assert disk.read_page(pid) == b"d"

    def test_mark_dirty(self):
        disk, pool = make_pool()
        pid = disk.allocate()
        disk.write_page(pid, b"orig")
        obj = pool.get(pid)
        assert obj == b"orig"
        pool.put(pid, b"changed")
        pool.flush()
        assert disk.read_page(pid) == b"changed"

    def test_mark_dirty_unbuffered_raises(self):
        disk, pool = make_pool()
        with pytest.raises(KeyError):
            pool.mark_dirty(0)

    def test_discard_drops_without_writeback(self):
        disk, pool = make_pool()
        pid = disk.allocate()
        pool.put(pid, b"temp")
        pool.discard(pid)
        assert pid not in pool
        assert disk.tracker.page_writes == 0

    def test_clear_flushes_then_empties(self):
        disk, pool = make_pool()
        pid = disk.allocate()
        pool.put(pid, b"x")
        pool.clear()
        assert len(pool) == 0
        assert disk.read_page(pid) == b"x"

    def test_hit_ratio(self):
        disk, pool = make_pool()
        pid = disk.allocate()
        disk.write_page(pid, b"v")
        pool.get(pid)
        pool.get(pid)
        assert pool.hit_ratio == pytest.approx(0.5)
        pool.reset_stats()
        assert pool.hit_ratio == 0.0


class TestAgainstReferenceModel:
    def test_fuzz_against_dict_model(self):
        """Random ops on the pool must match a plain dict 'database'."""
        rng = random.Random(42)
        disk, pool = make_pool(capacity=4)
        model = {}
        pids = [disk.allocate() for _ in range(10)]
        for pid in pids:
            payload = bytes([pid]) * 4
            disk.write_page(pid, payload)
            model[pid] = payload
        for step in range(2000):
            pid = rng.choice(pids)
            op = rng.random()
            if op < 0.6:
                assert pool.get(pid) == model[pid], step
            else:
                payload = bytes([rng.randrange(256)]) * 4
                pool.put(pid, payload)
                model[pid] = payload
        pool.flush()
        for pid in pids:
            assert disk.read_page(pid) == model[pid]

    def test_io_bounded_by_capacity_misses(self):
        """A working set within capacity converges to zero misses."""
        disk, pool = make_pool(capacity=5)
        pids = [disk.allocate() for _ in range(5)]
        for pid in pids:
            disk.write_page(pid, b"v")
        for _ in range(3):
            for pid in pids:
                pool.get(pid)
        assert pool.misses == 5  # only the cold start
        assert pool.hits == 10
