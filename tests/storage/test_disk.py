"""Tests for the simulated page-oriented disk."""

import pytest

from repro.metrics import CostTracker
from repro.storage import DEFAULT_PAGE_SIZE, DiskManager, PageError


class TestAllocation:
    def test_allocate_distinct_ids(self):
        disk = DiskManager()
        ids = {disk.allocate() for _ in range(100)}
        assert len(ids) == 100
        assert disk.num_pages == 100

    def test_deallocate_and_recycle(self):
        disk = DiskManager()
        pid = disk.allocate()
        disk.deallocate(pid)
        assert not disk.is_allocated(pid)
        recycled = disk.allocate()
        assert recycled == pid

    def test_deallocate_unknown_raises(self):
        disk = DiskManager()
        with pytest.raises(PageError):
            disk.deallocate(42)

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            DiskManager(page_size=0)


class TestIO:
    def test_roundtrip(self):
        disk = DiskManager()
        pid = disk.allocate()
        disk.write_page(pid, b"hello world")
        assert disk.read_page(pid) == b"hello world"

    def test_copy_semantics(self):
        disk = DiskManager()
        pid = disk.allocate()
        payload = bytearray(b"abc")
        disk.write_page(pid, bytes(payload))
        payload[0] = ord("z")
        assert disk.read_page(pid) == b"abc"

    def test_oversize_rejected(self):
        disk = DiskManager(page_size=16)
        pid = disk.allocate()
        with pytest.raises(PageError):
            disk.write_page(pid, b"x" * 17)
        disk.write_page(pid, b"x" * 16)  # exactly fits

    def test_unallocated_access_rejected(self):
        disk = DiskManager()
        with pytest.raises(PageError):
            disk.read_page(7)
        with pytest.raises(PageError):
            disk.write_page(7, b"")

    def test_default_page_size(self):
        assert DiskManager().page_size == DEFAULT_PAGE_SIZE == 4096


class TestAccounting:
    def test_counts_reads_and_writes(self):
        tracker = CostTracker()
        disk = DiskManager(tracker=tracker)
        pid = disk.allocate()
        disk.write_page(pid, b"a")
        disk.write_page(pid, b"b")
        disk.read_page(pid)
        assert tracker.page_writes == 2
        assert tracker.page_reads == 1

    def test_allocation_is_free(self):
        tracker = CostTracker()
        disk = DiskManager(tracker=tracker)
        for _ in range(10):
            disk.allocate()
        assert tracker.page_reads == 0
        assert tracker.page_writes == 0

    def test_owns_tracker_by_default(self):
        disk = DiskManager()
        pid = disk.allocate()
        disk.write_page(pid, b"x")
        assert disk.tracker.page_writes == 1
