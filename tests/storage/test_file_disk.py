"""File-backed disk: persistence, free-list reuse, tree integration."""

import os

import pytest

from repro.index import NodeCodec, TPRStarTree, TreeStorage
from repro.storage import BufferPool, FileDiskManager, PageError

from ..conftest import random_objects


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "pages.db")


class TestFileDisk:
    def test_roundtrip(self, path):
        disk = FileDiskManager(path)
        pid = disk.allocate()
        disk.write_page(pid, b"hello")
        assert disk.read_page(pid) == b"hello"
        disk.close()

    def test_persistence_across_reopen(self, path):
        with FileDiskManager(path) as disk:
            pids = [disk.allocate() for _ in range(5)]
            for i, pid in enumerate(pids):
                disk.write_page(pid, bytes([i]) * (i + 1))
        reopened = FileDiskManager(path)
        for i, pid in enumerate(pids):
            assert reopened.read_page(pid) == bytes([i]) * (i + 1)
        assert reopened.num_pages == 5
        reopened.close()

    def test_free_list_survives_reopen(self, path):
        with FileDiskManager(path) as disk:
            pids = [disk.allocate() for _ in range(4)]
            disk.deallocate(pids[1])
            disk.deallocate(pids[2])
        reopened = FileDiskManager(path)
        assert reopened.num_pages == 2
        assert not reopened.is_allocated(pids[1])
        # Freed pages are recycled before new ones are minted.
        assert reopened.allocate() in (pids[1], pids[2])
        reopened.close()

    def test_unallocated_rejected(self, path):
        disk = FileDiskManager(path)
        with pytest.raises(PageError):
            disk.read_page(0)
        pid = disk.allocate()
        disk.deallocate(pid)
        with pytest.raises(PageError):
            disk.write_page(pid, b"x")
        disk.close()

    def test_oversize_rejected(self, path):
        disk = FileDiskManager(path, page_size=64)
        pid = disk.allocate()
        limit = disk.usable_page_size
        with pytest.raises(PageError):
            disk.write_page(pid, b"x" * (limit + 1))
        disk.write_page(pid, b"x" * limit)
        disk.close()

    def test_wrong_magic_rejected(self, path):
        with open(path, "wb") as f:
            f.write(b"NOTADISKFILE" + b"\x00" * 100)
        with pytest.raises(PageError):
            FileDiskManager(path)

    def test_page_size_mismatch_rejected(self, path):
        FileDiskManager(path, page_size=512).close()
        with pytest.raises(PageError):
            FileDiskManager(path, page_size=1024)

    def test_io_accounting(self, path):
        disk = FileDiskManager(path)
        pid = disk.allocate()
        disk.write_page(pid, b"x")
        disk.read_page(pid)
        assert disk.tracker.page_writes == 1
        assert disk.tracker.page_reads == 1
        disk.close()

    def test_empty_payload(self, path):
        disk = FileDiskManager(path)
        pid = disk.allocate()
        disk.write_page(pid, b"")
        assert disk.read_page(pid) == b""
        disk.close()

    def test_sync(self, path):
        disk = FileDiskManager(path)
        pid = disk.allocate()
        disk.write_page(pid, b"durable")
        disk.sync()
        assert os.path.getsize(path) > 0
        disk.close()


class TestTreeOnFileDisk:
    def test_tree_persists_across_processes(self, path):
        """Build a tree on a file disk, drop everything, reopen the
        pages and read the nodes back."""
        disk = FileDiskManager(path)
        storage = TreeStorage.__new__(TreeStorage)
        storage.tracker = disk.tracker
        storage.disk = disk
        storage.buffer = BufferPool(disk, NodeCodec(), 50)
        tree = TPRStarTree(storage=storage)
        objs = random_objects(11, 200)
        for obj in objs:
            tree.insert(obj, 0.0)
        root_id = tree.root_id
        storage.buffer.flush()
        disk.close()

        reopened = FileDiskManager(path)
        pool = BufferPool(reopened, NodeCodec(), 50)
        root = pool.get(root_id)
        assert root.level == tree.height - 1
        # Walk every node and count objects.
        seen = 0
        stack = [root_id]
        while stack:
            node = pool.get(stack.pop())
            if node.is_leaf:
                seen += len(node.entries)
            else:
                stack.extend(e.ref for e in node.entries)
        assert seen == 200
        reopened.close()
