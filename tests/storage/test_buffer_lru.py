"""LRU buffer accounting against hand-computed access traces.

``test_buffer.py`` checks the pool's *behavior* (contents, write-back,
fuzz against a dict model).  This module checks its *accounting*: every
access in a written-out trace is annotated with the hit/miss/eviction
and physical-I/O counters it must produce, both on the global
:class:`CostTracker` and — when an :class:`ObsRecorder` is attached —
on the span that was open when the traffic happened.
"""

from __future__ import annotations

from repro.obs import ObsRecorder
from repro.storage import BufferPool, BytesCodec, DiskManager


def make_pool(capacity, n_pages, recorder=None):
    disk = DiskManager()
    pool = BufferPool(disk, BytesCodec(), capacity=capacity)
    pids = [disk.allocate() for _ in range(n_pages)]
    for pid in pids:
        disk.write_page(pid, bytes([pid % 256]))
    disk.tracker.reset()
    if recorder is not None:
        recorder.attach(disk.tracker)
    return disk, pool, pids


def stats(disk, pool):
    return (pool.hits, pool.misses,
            disk.tracker.page_reads, disk.tracker.page_writes)


class TestHandComputedTrace:
    def test_capacity_two_trace(self):
        disk, pool, (p0, p1, p2) = make_pool(2, 3)
        # (op, page, expected (hits, misses, reads, writes) afterwards)
        trace = [
            ("get", p0, (0, 1, 1, 0)),  # cold miss
            ("get", p1, (0, 2, 2, 0)),  # cold miss, pool [p0, p1]
            ("get", p0, (1, 2, 2, 0)),  # hit, p0 now MRU: [p1, p0]
            ("get", p2, (1, 3, 3, 0)),  # miss, evicts clean p1
            ("get", p1, (1, 4, 4, 0)),  # re-miss proves p1 was evicted; drops p0
            ("put", p2, (1, 4, 4, 0)),  # dirty in place, no I/O: [p1, p2]
            ("get", p0, (1, 5, 5, 0)),  # miss, evicts clean p1: [p2, p0]
            ("get", p1, (1, 6, 6, 1)),  # miss evicts dirty p2 → 1 write
            ("get", p2, (1, 7, 7, 1)),  # written-back page reads clean
        ]
        for i, (op, pid, want) in enumerate(trace):
            if op == "get":
                pool.get(pid)
            else:
                pool.put(pid, b"*")
            assert stats(disk, pool) == want, (i, op, pid)

    def test_capacity_one_thrashes_every_access(self):
        disk, pool, (p0, p1) = make_pool(1, 2)
        for round_no in range(1, 4):
            pool.get(p0)
            pool.get(p1)
            assert pool.hits == 0
            assert pool.misses == 2 * round_no
        # All evictions were clean: reads paid, never a write.
        assert disk.tracker.page_reads == 6
        assert disk.tracker.page_writes == 0

    def test_dirty_writeback_count_is_per_eviction(self):
        disk, pool, pids = make_pool(2, 4)
        for pid in pids:
            pool.put(pid, bytes([pid]))  # each put past 2 evicts dirty
        assert disk.tracker.page_writes == 2
        assert pool.flush() == 2         # the two still-resident frames
        assert disk.tracker.page_writes == 4
        for pid in pids:
            assert disk.read_page(pid) == bytes([pid])

    def test_repeated_put_stays_one_writeback(self):
        disk, pool, (p0, p1) = make_pool(1, 2)
        for _ in range(5):
            pool.put(p0, b"v")           # re-dirtying is free
        assert disk.tracker.page_writes == 0
        pool.get(p1)                     # single eviction, single write
        assert disk.tracker.page_writes == 1


class TestObsAttribution:
    def test_counters_match_pool_totals(self):
        rec = ObsRecorder()
        disk, pool, (p0, p1, p2) = make_pool(2, 3, recorder=rec)
        for pid in (p0, p1, p0, p2, p1, p0):
            pool.get(pid)
        totals = rec.root_totals()
        assert totals["buffer_hits"] == pool.hits == 1
        assert totals["buffer_misses"] == pool.misses == 5
        assert totals["buffer_evictions"] == 3
        assert totals["page_reads"] == disk.tracker.page_reads == 5

    def test_traffic_files_into_the_open_span(self):
        rec = ObsRecorder()
        disk, pool, (p0, p1) = make_pool(1, 2, recorder=rec)
        with rec.span("warm"):
            pool.get(p0)
        with rec.span("thrash"):
            pool.get(p1)
            pool.put(p1, b"*")
            pool.get(p0)                 # evicts dirty p1
        (warm,) = rec.find("warm")
        (thrash,) = rec.find("thrash")
        assert warm.counts == {"buffer_misses": 1, "page_reads": 1}
        assert thrash.counts == {
            "buffer_misses": 2,
            "buffer_evictions": 2,
            "page_reads": 2,
            "page_writes": 1,
        }

    def test_detached_pool_counts_locally_only(self):
        rec = ObsRecorder()
        disk, pool, (p0, p1) = make_pool(1, 2, recorder=rec)
        pool.get(p0)
        rec.detach()
        pool.get(p1)
        assert pool.misses == 2
        assert rec.root_totals() == {"buffer_misses": 1, "page_reads": 1}
