"""Column-page persistence: chained pages round-trip the columnar store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ColumnStore, UpdateColumns, columns_from_objects
from repro.metrics import CostTracker
from repro.storage import (
    DiskManager,
    FileDiskManager,
    free_columns,
    load_column_store,
    load_columns,
    save_column_store,
    save_columns,
)
from repro.workloads import make_workload


def some_columns(n=120, seed=2):
    return columns_from_objects(make_workload(n, "uniform", seed=seed).set_a)


def assert_columns_equal(got, want):
    assert got.oid.tolist() == want.oid.tolist()
    for name in ("mlo", "mhi", "vlo", "vhi", "tref"):
        assert np.array_equal(getattr(got, name), getattr(want, name)), name


def test_round_trip_in_memory():
    disk = DiskManager(page_size=512)  # small pages force a long chain
    cols = some_columns()
    root = save_columns(disk, cols)
    assert disk.num_pages > 1  # genuinely chained
    assert_columns_equal(load_columns(disk, root), cols)


def test_round_trip_empty_batch():
    disk = DiskManager(page_size=512)
    root = save_columns(disk, UpdateColumns.empty())
    back = load_columns(disk, root)
    assert len(back) == 0


def test_free_releases_every_page():
    disk = DiskManager(page_size=512)
    before = disk.num_pages
    root = save_columns(disk, some_columns())
    chained = disk.num_pages - before
    assert free_columns(disk, root) == chained
    assert disk.num_pages == before


def test_reads_are_counted():
    tracker = CostTracker()
    disk = DiskManager(page_size=512, tracker=tracker)
    root = save_columns(disk, some_columns())
    writes = tracker.page_writes
    assert writes > 1
    load_columns(disk, root)
    assert tracker.page_reads >= writes  # one read per written page


def test_column_store_round_trip_recomputes_shifts():
    disk = DiskManager(page_size=1024)
    objs = make_workload(80, "gaussian", seed=6).set_a
    store = ColumnStore.from_objects(objs)
    store.remove([objs[3].oid, objs[50].oid])  # live prefix != insert order
    root = save_column_store(disk, store)
    back = load_column_store(disk, root)
    assert len(back) == len(store)
    n = len(store)
    assert back.oid[:n].tolist() == store.oid[:n].tolist()
    # slo/shi are derived, not persisted; they must match bit-exactly.
    assert np.array_equal(back.slo[:, :n], store.slo[:, :n])
    assert np.array_equal(back.shi[:, :n], store.shi[:, :n])
    for oid in back.oids.tolist():
        assert back.get(oid).kbox.params() == store.get(oid).kbox.params()


def test_round_trip_through_file(tmp_path):
    path = tmp_path / "cols.pages"
    cols = some_columns(n=200)
    disk = FileDiskManager(str(path), page_size=4096)
    root = save_columns(disk, cols)
    disk.close()
    reopened = FileDiskManager(str(path), page_size=4096)
    assert_columns_equal(load_columns(reopened, root), cols)
    reopened.close()


def test_corrupt_stream_rejected():
    disk = DiskManager(page_size=512)
    pid = disk.allocate()
    disk.write_page(pid, b"\xff" * 8 + b"NOTMAGIC" + b"\x00" * 16)
    with pytest.raises(ValueError, match="column-page stream"):
        load_columns(disk, pid)
