"""CRC32 page integrity: corruption is detected, legacy formats load."""

from __future__ import annotations

import struct

import pytest

from repro.storage import (
    CorruptPageError,
    DiskManager,
    FileDiskManager,
    PageError,
    load_column_store,
    load_columns,
    save_column_store,
    save_columns,
)
from repro.storage import column_pages

from ..conftest import random_objects
from .test_column_pages import assert_columns_equal, some_columns

_HEADER = struct.Struct("<8sqqq")


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "pages.db")


def flip_byte(path: str, offset: int, mask: int = 0x40) -> None:
    with open(path, "r+b") as f:
        f.seek(offset)
        byte = f.read(1)[0]
        f.seek(offset)
        f.write(bytes([byte ^ mask]))


def page_offset(page_size: int, page_id: int) -> int:
    return _HEADER.size + page_id * page_size


def write_legacy_v1(path: str, page_size: int, payloads) -> None:
    """Synthesize a version-1 file (magic ``RPRODISK``, length-only)."""
    with open(path, "wb") as f:
        f.write(_HEADER.pack(b"RPRODISK", page_size, len(payloads), -1))
        for data in payloads:
            framed = struct.pack("<i", len(data)) + data
            f.write(framed.ljust(page_size, b"\x00"))


class TestFileDiskChecksums:
    def test_new_files_are_version_2(self, path):
        with FileDiskManager(path, page_size=128) as disk:
            assert disk.format_version == 2
            assert disk.usable_page_size == 128 - 8
        assert FileDiskManager(path).format_version == 2

    def test_payload_bit_flip_detected(self, path):
        disk = FileDiskManager(path, page_size=128)
        pid = disk.allocate()
        disk.write_page(pid, b"payload-bytes")
        disk.close()
        # Flip one bit inside the payload, past the 8-byte frame.
        flip_byte(path, page_offset(128, pid) + 8 + 3)
        reopened = FileDiskManager(path)
        with pytest.raises(CorruptPageError, match="CRC32"):
            reopened.read_page(pid)
        reopened.close()

    def test_corrupt_length_detected(self, path):
        disk = FileDiskManager(path, page_size=128)
        pid = disk.allocate()
        disk.write_page(pid, b"x" * 16)
        disk.close()
        with open(path, "r+b") as f:
            f.seek(page_offset(128, pid))
            f.write(struct.pack("<i", 10_000))
        reopened = FileDiskManager(path)
        with pytest.raises(CorruptPageError, match="length"):
            reopened.read_page(pid)
        reopened.close()

    def test_crc_mismatch_detected(self, path):
        disk = FileDiskManager(path, page_size=128)
        pid = disk.allocate()
        disk.write_page(pid, b"y" * 16)
        disk.close()
        # Corrupt the stored checksum itself.
        flip_byte(path, page_offset(128, pid) + 4)
        reopened = FileDiskManager(path)
        with pytest.raises(CorruptPageError):
            reopened.read_page(pid)
        reopened.close()

    def test_legacy_v1_file_loads_and_writes(self, path):
        write_legacy_v1(path, 128, [b"hello", b"world"])
        disk = FileDiskManager(path)
        assert disk.format_version == 1
        assert disk.usable_page_size == 128 - 4
        assert disk.read_page(0) == b"hello"
        assert disk.read_page(1) == b"world"
        # Writes to a legacy file keep the legacy framing (no CRC),
        # so the file stays consistent with its declared version.
        pid = disk.allocate()
        disk.write_page(pid, b"x" * disk.usable_page_size)
        disk.close()
        reopened = FileDiskManager(path)
        assert reopened.format_version == 1
        assert reopened.read_page(pid) == b"x" * (128 - 4)
        reopened.close()

    def test_recycled_page_reads_empty(self, path):
        disk = FileDiskManager(path, page_size=128)
        pid = disk.allocate()
        disk.write_page(pid, b"stale")
        disk.deallocate(pid)
        again = disk.allocate()
        assert again == pid
        # The stale free-link/frame must not survive as readable data.
        assert disk.read_page(again) == b""
        disk.close()

    def test_empty_page_validates(self, path):
        disk = FileDiskManager(path, page_size=128)
        pid = disk.allocate()
        assert disk.read_page(pid) == b""
        disk.write_page(pid, b"")
        assert disk.read_page(pid) == b""
        disk.close()

    def test_oversize_respects_v2_frame(self, path):
        disk = FileDiskManager(path, page_size=128)
        pid = disk.allocate()
        with pytest.raises(PageError):
            disk.write_page(pid, b"x" * (disk.usable_page_size + 1))
        disk.close()


class TestColumnStreamChecksums:
    def test_truncated_stream_detected(self):
        stream = column_pages._encode(some_columns(n=30))
        with pytest.raises(CorruptPageError, match="truncated"):
            column_pages._decode(stream[:-10])

    def test_payload_bit_flip_detected(self):
        stream = bytearray(column_pages._encode(some_columns(n=30)))
        stream[column_pages._HEAD_V2.size + 11] ^= 0x20
        with pytest.raises(CorruptPageError, match="CRC32"):
            column_pages._decode(bytes(stream))

    def test_legacy_v1_stream_decodes(self):
        cols = some_columns(n=25)
        payload = column_pages._encode(cols)[column_pages._HEAD_V2.size :]
        legacy = (
            column_pages._HEAD_V1.pack(b"RPROCOLS", len(cols), 2) + payload
        )
        assert_columns_equal(column_pages._decode(legacy), cols)

    def test_unsupported_version_rejected(self):
        cols = some_columns(n=5)
        stream = bytearray(column_pages._encode(cols))
        stream[8] = 9  # the version byte right after the magic
        with pytest.raises(ValueError, match="version"):
            column_pages._decode(bytes(stream))

    def test_round_trip_on_checksummed_file(self, tmp_path):
        from repro.core import ColumnStore

        objs = random_objects(5, 60)
        store = ColumnStore.from_objects(objs)
        disk = FileDiskManager(str(tmp_path / "cols.db"), page_size=256)
        root = save_column_store(disk, store)
        back = load_column_store(disk, root)
        n = len(store)
        assert back.oid[:n].tolist() == store.oid[:n].tolist()
        disk.close()

    def test_chunking_respects_usable_page_size(self, tmp_path):
        # v2 file pages lose 8 framing bytes; the chain must never ask
        # a page to hold more than it can.
        disk = FileDiskManager(str(tmp_path / "tight.db"), page_size=64)
        cols = some_columns(n=40)
        root = save_columns(disk, cols)
        assert_columns_equal(load_columns(disk, root), cols)
        disk.close()

    def test_in_memory_disk_unchanged(self):
        disk = DiskManager(page_size=512)
        assert disk.usable_page_size == 512
        cols = some_columns(n=40)
        root = save_columns(disk, cols)
        assert_columns_equal(load_columns(disk, root), cols)
