"""Memory-mapped column slabs: RPROCOL3 round trips, lazy integrity,
and legacy streams loading through the unified reader path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import columns_from_objects
from repro.storage import (
    CorruptPageError,
    MappedColumns,
    map_columns,
    read_column_stream,
    save_columns_file,
)
from repro.storage.column_pages import (
    _HEAD_V1,
    _MAGIC_V1,
    _N_SLABS,
    _V3_HEADER_SIZE,
    _encode,
)
from repro.workloads import make_workload


def some_columns(n=150, seed=3):
    return columns_from_objects(make_workload(n, "uniform", seed=seed).set_a)


def encode_v1(cols) -> bytes:
    """A legacy version-1 stream (header without integrity fields)."""
    parts = [
        np.ascontiguousarray(cols.oid, dtype="<i8").tobytes(),
        np.ascontiguousarray(cols.tref, dtype="<f8").tobytes(),
    ]
    for column in (cols.mlo, cols.mhi, cols.vlo, cols.vhi):
        for dim in range(column.shape[0]):
            parts.append(np.ascontiguousarray(column[dim], dtype="<f8").tobytes())
    return _HEAD_V1.pack(_MAGIC_V1, len(cols), cols.mlo.shape[0]) + b"".join(parts)


def assert_columns_equal(got, want):
    assert np.array_equal(np.asarray(got.oid), want.oid)
    for name in ("mlo", "mhi", "vlo", "vhi", "tref"):
        assert np.array_equal(np.asarray(getattr(got, name)), getattr(want, name)), name


# ----------------------------------------------------------------------
# RPROCOL3 slab images
# ----------------------------------------------------------------------
class TestMappedColumns:
    def test_round_trip(self, tmp_path):
        cols = some_columns()
        path = tmp_path / "cols.rcol3"
        nbytes = save_columns_file(path, cols)
        assert path.stat().st_size == nbytes
        mapped = map_columns(path)
        assert isinstance(mapped, MappedColumns)
        assert len(mapped) == len(cols)
        assert_columns_equal(mapped, cols)

    def test_header_is_aligned(self):
        assert _V3_HEADER_SIZE % 8 == 0

    def test_open_reads_only_the_header(self, tmp_path):
        """No slab is verified at open; the batch touch verifies all."""
        cols = some_columns()
        path = tmp_path / "cols.rcol3"
        save_columns_file(path, cols)
        mapped = map_columns(path)
        assert sum(mapped._verified) == 0
        mapped.oid
        assert sum(mapped._verified) == 1
        mapped.batch()
        assert sum(mapped._verified) == _N_SLABS

    def test_shift_planes_recomputed_lazily(self, tmp_path):
        cols = some_columns()
        path = tmp_path / "cols.rcol3"
        save_columns_file(path, cols)
        mapped = map_columns(path)
        assert mapped._slo is None
        expect = cols.mlo - cols.vlo * cols.tref
        assert np.array_equal(mapped.slo, expect)
        assert mapped._slo is not None  # cached
        batch = mapped.batch()
        assert np.array_equal(batch.slo, expect)
        assert np.array_equal(batch.shi, cols.mhi - cols.vhi * cols.tref)

    def test_mapped_batch_sweeps_like_materialized(self, tmp_path):
        """The mapped batch is kernel-identical to an in-memory pack."""
        from repro.core import ColumnStore
        from repro.geometry.kernels import batch_sweep_join

        scenario = make_workload(80, "uniform", seed=9)
        cols_a = columns_from_objects(scenario.set_a)
        cols_b = columns_from_objects(scenario.set_b)
        path = tmp_path / "a.rcol3"
        save_columns_file(path, cols_a)
        mapped = map_columns(path)
        ref = ColumnStore.from_columns(cols_a).batch()
        other = ColumnStore.from_columns(cols_b).batch()
        got = batch_sweep_join(mapped.batch(), other, 0.0, 30.0)
        want = batch_sweep_join(ref, other, 0.0, 30.0)
        for g, w in zip(got, want):
            assert np.array_equal(g, w)

    def test_empty_batch(self, tmp_path):
        from repro.core import UpdateColumns

        path = tmp_path / "empty.rcol3"
        save_columns_file(path, UpdateColumns.empty())
        mapped = map_columns(path)
        assert len(mapped) == 0
        assert mapped.batch().n == 0

    def test_materialize_matches(self, tmp_path):
        cols = some_columns()
        path = tmp_path / "cols.rcol3"
        save_columns_file(path, cols)
        assert_columns_equal(map_columns(path).columns(), cols)

    def test_v3_bytes_through_unified_reader(self, tmp_path):
        cols = some_columns()
        path = tmp_path / "cols.rcol3"
        save_columns_file(path, cols)
        assert_columns_equal(read_column_stream(path.read_bytes()), cols)


# ----------------------------------------------------------------------
# Integrity: corruption and truncation, caught per layer
# ----------------------------------------------------------------------
class TestIntegrity:
    def write(self, tmp_path, mutate=None):
        cols = some_columns()
        path = tmp_path / "cols.rcol3"
        save_columns_file(path, cols)
        if mutate is not None:
            data = bytearray(path.read_bytes())
            mutate(data)
            path.write_bytes(bytes(data))
        return path

    def test_header_bitflip_caught_at_open(self, tmp_path):
        def flip(data):
            data[10] ^= 0xFF  # inside the row-count field

        path = self.write(tmp_path, flip)
        with pytest.raises(CorruptPageError, match="header"):
            map_columns(path)

    def test_slab_bitflip_caught_on_first_touch(self, tmp_path):
        def flip(data):
            data[-5] ^= 0xFF  # last slab (vhi, highest dim)

        path = self.write(tmp_path, flip)
        mapped = map_columns(path)
        mapped.oid  # untouched slabs stay readable
        with pytest.raises(CorruptPageError, match="CRC32"):
            mapped.vhi

    def test_v3_truncation_caught_at_open(self, tmp_path):
        path = self.write(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CorruptPageError, match="truncated"):
            map_columns(path)

    def test_v2_truncation_caught(self):
        stream = _encode(some_columns())
        with pytest.raises(CorruptPageError, match="truncated"):
            read_column_stream(stream[: len(stream) - 8])

    def test_v1_truncation_caught(self):
        stream = encode_v1(some_columns())
        with pytest.raises(CorruptPageError, match="truncated"):
            read_column_stream(stream[: len(stream) - 8])

    def test_unknown_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.rcol3"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 64)
        with pytest.raises(ValueError, match="column-page stream"):
            map_columns(path)
        with pytest.raises(ValueError, match="column-page stream"):
            read_column_stream(path.read_bytes())


# ----------------------------------------------------------------------
# Legacy formats through the new reader path
# ----------------------------------------------------------------------
class TestLegacyStreams:
    def test_v2_file_materializes_via_map_columns(self, tmp_path):
        cols = some_columns()
        path = tmp_path / "legacy.rcol2"
        path.write_bytes(_encode(cols))
        back = map_columns(path)  # UpdateColumns, not MappedColumns
        assert not isinstance(back, MappedColumns)
        assert_columns_equal(back, cols)

    def test_v1_file_materializes_via_map_columns(self, tmp_path):
        cols = some_columns()
        path = tmp_path / "legacy.rcols"
        path.write_bytes(encode_v1(cols))
        back = map_columns(path)
        assert not isinstance(back, MappedColumns)
        assert_columns_equal(back, cols)

    def test_v1_stream_via_unified_reader(self):
        cols = some_columns()
        assert_columns_equal(read_column_stream(encode_v1(cols)), cols)
