"""Differential suite: ColumnResultStore is store-identical to the
seed JoinResultStore.

The structure-of-arrays store must not be "close" — it must be
*bit-identical* under every mutation the engines perform: batched adds,
object removal, expiry pruning, and the delta ledger fed from array
diffs.  Each comparison below is exact equality on interval endpoints
and on netted delta events, never tolerance-based.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    COLUMNAR_ALGORITHMS,
    ColumnarJoinEngine,
    JoinConfig,
)
from repro.core.result import ColumnResultStore, JoinResultStore
from repro.deltas import DeltaLedger, fold_events
from repro.geometry import TimeInterval
from repro.join import JoinTriple
from repro.workloads import VectorUpdateStream, make_workload_arrays


def triple(a, b, s, e):
    return JoinTriple(a, b, TimeInterval(s, e))

T_M = 12.0
N = 60
STEPS = 12


def dump(store):
    return sorted(
        (key, tuple((iv.start, iv.end) for iv in intervals))
        for key, intervals in store._pairs.items()
    )


def drive(algorithm, *, result_store, sanitize=False, deltas=False, seed=31):
    config = JoinConfig(
        t_m=T_M, result_store=result_store, sanitize=sanitize, deltas=deltas
    )
    arr = make_workload_arrays(
        N, "uniform", max_speed=3.0, object_size_pct=1.5, t_m=T_M, seed=seed
    )
    engine = ColumnarJoinEngine(
        arr.columns_a(), arr.columns_b(), algorithm=algorithm, config=config
    )
    engine.run_initial_join()
    stream = VectorUpdateStream(arr, seed=seed + 5)
    for step in range(1, STEPS + 1):
        t = float(step)
        engine.tick(t)
        upd_a, upd_b = stream.updates_at(t)
        engine.apply_update_columns(upd_a, upd_b)
    return engine


# ----------------------------------------------------------------------
# Engine-level identity: columns store vs pairs store
# ----------------------------------------------------------------------
class TestEngineIdentity:
    @pytest.mark.parametrize("algorithm", COLUMNAR_ALGORITHMS)
    @pytest.mark.parametrize("sanitize", [False, True])
    def test_store_identical_over_matrix(self, algorithm, sanitize):
        pairs = drive(algorithm, result_store="pairs", sanitize=sanitize)
        cols = drive(algorithm, result_store="columns", sanitize=sanitize)
        assert isinstance(pairs.store, JoinResultStore)
        assert isinstance(cols.store, ColumnResultStore)
        assert dump(pairs.store) == dump(cols.store)
        assert len(cols.store) > 0  # the identity is not vacuous

    @pytest.mark.parametrize("algorithm", COLUMNAR_ALGORITHMS)
    def test_delta_streams_identical(self, algorithm):
        pairs = drive(algorithm, result_store="pairs", deltas=True)
        cols = drive(algorithm, result_store="columns", deltas=True)
        assert pairs.ledger.ticks() == cols.ledger.ticks()
        for t in pairs.ledger.ticks():
            assert pairs.ledger.events_at(t) == cols.ledger.events_at(t), t
        assert fold_events(cols.ledger).rows() == cols.store.interval_rows()

    def test_default_config_uses_the_column_store(self):
        arr = make_workload_arrays(20, "uniform", t_m=T_M, seed=1)
        engine = ColumnarJoinEngine(
            arr.columns_a(), arr.columns_b(), algorithm="mtb",
            config=JoinConfig(t_m=T_M),
        )
        assert isinstance(engine.store, ColumnResultStore)

    def test_result_store_knob_validated(self):
        with pytest.raises(ValueError, match="result_store"):
            JoinConfig(t_m=T_M, result_store="rows")


# ----------------------------------------------------------------------
# Store-level randomized oracle
# ----------------------------------------------------------------------
class TestStoreOracle:
    def test_randomized_mutation_stream(self):
        """Every public observable matches the dict-of-lists oracle under
        a random interleaving of adds, removals, prunes, and clears."""
        rng = np.random.default_rng(7)
        ref, col = JoinResultStore(), ColumnResultStore()
        for trial in range(250):
            op = rng.integers(0, 10)
            if op <= 5:  # batched adds dominate, as in the engines
                k = int(rng.integers(1, 6))
                a = rng.integers(0, 12, size=k)
                b = rng.integers(100, 112, size=k)
                lo = np.round(rng.uniform(0, 50, size=k), 2)
                hi = lo + np.round(rng.uniform(0.01, 10, size=k), 2)
                ref.add_batch(a, b, lo, hi)
                col.add_batch(a, b, lo, hi)
            elif op == 6:
                oid = int(rng.integers(0, 12))
                assert ref.remove_object(oid) == col.remove_object(oid)
            elif op == 7:
                oids = rng.integers(100, 112, size=3)
                assert ref.remove_objects(oids) == col.remove_objects(oids)
            elif op == 8:
                t = float(rng.uniform(0, 60))
                assert ref.prune_expired(t) == col.prune_expired(t)
            else:
                t = float(rng.uniform(0, 60))
                assert ref.pairs_at(t) == col.pairs_at(t)
            assert len(ref) == len(col), trial
        assert dump(ref) == dump(col)
        assert ref.interval_rows() == col.interval_rows()
        assert sorted(ref.pair_keys()) == col.pair_keys()
        some = next(iter(col.pair_keys()), None)
        if some is not None:
            assert ref.intervals_for(some) == col.intervals_for(some)
            assert some in col
            assert ref.pairs_for_object(some[0]) == col.pairs_for_object(some[0])

    def test_ledger_events_net_identically(self):
        """Flush-time array diffs must produce the same netted event
        stream as the seed store's incremental records."""
        rng = np.random.default_rng(11)
        ref, col = JoinResultStore(), ColumnResultStore()
        led_ref, led_col = DeltaLedger(), DeltaLedger()
        ref.attach_ledger(led_ref)
        col.attach_ledger(led_col)
        for t in range(1, 20):
            k = int(rng.integers(1, 5))
            a = rng.integers(0, 8, size=k)
            b = rng.integers(50, 58, size=k)
            lo = np.round(rng.uniform(0, 30, size=k), 1)
            hi = lo + np.round(rng.uniform(0.1, 8, size=k), 1)
            ref.add_batch(a, b, lo, hi)
            col.add_batch(a, b, lo, hi)
            if t % 3 == 0:
                oid = int(rng.integers(0, 8))
                ref.remove_object(oid)
                col.remove_object(oid)
            if t % 5 == 0:
                ref.prune_expired(float(t))
                col.prune_expired(float(t))
            led_ref.advance(float(t))
            led_col.advance(float(t))
        assert led_ref.ticks() == led_col.ticks()
        for t in led_ref.ticks():
            assert led_ref.events_at(t) == led_col.events_at(t), t
        assert fold_events(led_col).rows() == col.interval_rows()

    def test_clear_records_full_retraction(self):
        col = ColumnResultStore()
        ledger = DeltaLedger()
        col.attach_ledger(ledger)
        col.add(triple(1, 2, 0.0, 5.0))
        col.add(triple(1, 2, 7.0, 9.0))
        ledger.advance(1.0)
        col.clear()
        ledger.advance(2.0)
        assert len(col) == 0
        assert fold_events(ledger).rows() == {}

    def test_adjacent_intervals_coalesce_like_seed(self):
        ref, col = JoinResultStore(), ColumnResultStore()
        for store in (ref, col):
            store.add(triple(1, 2, 0.0, 1.0))
            store.add(triple(1, 2, 1.0, 2.0))  # touching: must merge
            store.add(triple(1, 2, 5.0, 6.0))  # disjoint: must stay separate
        assert ref.intervals_for((1, 2)) == col.intervals_for((1, 2))
        assert len(col.intervals_for((1, 2))) == 2

    def test_rejects_what_the_seed_rejects(self):
        col = ColumnResultStore()
        with pytest.raises(ValueError, match="NaN"):
            col.add_batch([1], [2], [float("nan")], [1.0])
        with pytest.raises(ValueError, match="empty interval"):
            col.add_batch([1], [2], [3.0], [2.0])
        with pytest.raises(ValueError):
            col.add_batch([1], [2], [float("inf")], [float("inf")])

    def test_approx_bytes_tracks_planes(self):
        col = ColumnResultStore()
        base = col.approx_bytes()
        a = np.arange(100)
        col.add_batch(a, a + 1000, np.zeros(100), np.ones(100))
        col.flush()
        assert col.approx_bytes() > base
