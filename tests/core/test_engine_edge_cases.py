"""Engine edge cases: regressions, buffer pressure, long runs, GC."""

import pytest

from repro.core import ContinuousJoinEngine, JoinConfig, SimulationDriver
from repro.geometry import Box
from repro.join import brute_force_pairs_at
from repro.objects import MovingObject
from repro.workloads import UpdateStream, uniform_workload


class TestETPSeparationRegression:
    """Regression: a pair separating exactly at a TP refresh time must
    leave the ETP answer (closed-interval boundary bug).

    Object ``a`` sweeps over static ``b``: intersection during [3, 5].
    The event chain refreshes at t=3 (pair enters) and t=5 (pair
    leaves); at any t > 5 the pair must be gone even though the t=5
    refresh still 'sees' the touching pair.
    """

    def test_pair_leaves_after_separation(self):
        a = MovingObject(1, Box(0, 1, 0, 1), 1.0, 0.0, 0.0)
        b = MovingObject(100, Box(4, 5, 0, 1), 0.0, 0.0, 0.0)
        engine = ContinuousJoinEngine.create(
            [a], [b], algorithm="etp", config=JoinConfig(t_m=100.0)
        )
        engine.run_initial_join()
        assert engine.result_at(0.0) == set()
        engine.tick(4.0)
        assert engine.result_at(4.0) == {(1, 100)}
        engine.tick(6.0)
        assert engine.result_at(6.0) == set()

    def test_exact_event_timestamps(self):
        a = MovingObject(1, Box(0, 1, 0, 1), 1.0, 0.0, 0.0)
        b = MovingObject(100, Box(4, 5, 0, 1), 0.0, 0.0, 0.0)
        engine = ContinuousJoinEngine.create(
            [a], [b], algorithm="etp", config=JoinConfig(t_m=100.0)
        )
        engine.run_initial_join()
        # Contact starts exactly at t=3 (closed: included).
        engine.tick(3.0)
        assert engine.result_at(3.0) == {(1, 100)}
        # Separation at t=5: the TP convention is "valid immediately
        # after", so the pair is already gone at the event instant.
        engine.tick(5.0)
        assert engine.result_at(5.0) == set()


class TestBufferPressure:
    @pytest.mark.parametrize("algorithm", ["tc", "mtb"])
    def test_tiny_buffer_preserves_answers(self, algorithm):
        """A 3-page buffer forces constant eviction; write-back and
        re-reads must never corrupt the maintained answer."""
        scenario = uniform_workload(
            100, seed=8, max_speed=3.0, object_size_pct=1.0, t_m=10.0
        )
        engine = ContinuousJoinEngine.create(
            scenario.set_a, scenario.set_b, algorithm=algorithm,
            config=JoinConfig(t_m=10.0, buffer_pages=3),
        )
        engine.run_initial_join()
        driver = SimulationDriver(engine, UpdateStream(scenario, seed=4))
        for _ in range(15):
            driver.step()
            want = brute_force_pairs_at(
                engine.objects_a.values(), engine.objects_b.values(), engine.now
            )
            assert engine.result_at(engine.now) == want
        # Pressure must actually have produced disk traffic.
        assert engine.tracker.page_reads > 100


class TestLongRun:
    def test_multiple_tm_cycles_with_pruning(self):
        """Run several full T_M cycles, pruning the store periodically;
        the answer must stay exact and the store must stay bounded."""
        scenario = uniform_workload(
            80, seed=15, max_speed=3.0, object_size_pct=1.5, t_m=8.0
        )
        engine = ContinuousJoinEngine.create(
            scenario.set_a, scenario.set_b, algorithm="mtb",
            config=JoinConfig(t_m=8.0),
        )
        engine.run_initial_join()
        driver = SimulationDriver(engine, UpdateStream(scenario, seed=16))
        store_sizes = []
        for step in range(40):  # five T_M cycles
            driver.step()
            if step % 8 == 7:
                engine.prune_expired()
            store_sizes.append(len(engine._strategy.store))
            want = brute_force_pairs_at(
                engine.objects_a.values(), engine.objects_b.values(), engine.now
            )
            assert engine.result_at(engine.now) == want
        # The pruned store should not grow without bound.
        assert max(store_sizes[-8:]) < max(store_sizes) * 3 + 50

    def test_prune_is_noop_for_etp(self):
        scenario = uniform_workload(30, seed=1, t_m=10.0)
        engine = ContinuousJoinEngine.create(
            scenario.set_a, scenario.set_b, algorithm="etp",
            config=JoinConfig(t_m=10.0),
        )
        engine.run_initial_join()
        assert engine.prune_expired() == 0


class TestDeepTrees:
    def test_small_capacity_deep_tree_join(self):
        """node_capacity=5 forces height ≥ 4 at n=400: the recursive
        join and IC tightening must stay exact through many levels."""
        scenario = uniform_workload(
            400, seed=23, max_speed=2.0, object_size_pct=1.0, t_m=10.0
        )
        engine = ContinuousJoinEngine.create(
            scenario.set_a, scenario.set_b, algorithm="mtb",
            config=JoinConfig(t_m=10.0, node_capacity=5),
        )
        engine.run_initial_join()
        want = brute_force_pairs_at(scenario.set_a, scenario.set_b, 0.0)
        assert engine.result_at(0.0) == want

    def test_alternate_bucket_granularity(self):
        for m in (1, 4):
            scenario = uniform_workload(
                80, seed=m, max_speed=3.0, object_size_pct=1.0, t_m=8.0
            )
            engine = ContinuousJoinEngine.create(
                scenario.set_a, scenario.set_b, algorithm="mtb",
                config=JoinConfig(t_m=8.0, buckets_per_tm=m),
            )
            engine.run_initial_join()
            driver = SimulationDriver(engine, UpdateStream(scenario, seed=2))
            for _ in range(12):
                driver.step()
                want = brute_force_pairs_at(
                    engine.objects_a.values(), engine.objects_b.values(),
                    engine.now,
                )
                assert engine.result_at(engine.now) == want, m
