"""Differential suite: the columnar engine is store-identical to the seed.

The tentpole claim of the columnar tick loop is not "close" but
*bit-identical*: same pair keys, same interval endpoints, across the
whole maintenance matrix — both algorithms, NumPy kernels on and off in
the seed engine, sanitizers on and off, and against the K-way sharded
engine's merged store.  Every comparison below is exact equality on
interval endpoints, never tolerance-based.
"""

from __future__ import annotations

import pytest

from repro.core import (
    COLUMNAR_ALGORITHMS,
    ColumnarJoinEngine,
    ContinuousJoinEngine,
    JoinConfig,
    SimulationDriver,
)
from repro.workloads import (
    UpdateStream,
    VectorUpdateStream,
    make_workload,
    make_workload_arrays,
)

T_M = 12.0
N = 60
STEPS = 14


def dump(store):
    """Exact store contents: sorted (key, interval endpoints) rows."""
    return sorted(
        (key, tuple((iv.start, iv.end) for iv in intervals))
        for key, intervals in store._pairs.items()
    )


def scenario_pair(seed=31, n=N, distribution="uniform"):
    scenario = make_workload(
        n, distribution, max_speed=3.0, object_size_pct=1.5, t_m=T_M, seed=seed
    )
    return scenario


def drive_both(algorithm, config_seed, config_col, distribution="uniform", seed=31):
    """Run seed and columnar engines in lockstep off one update stream."""
    scenario = scenario_pair(seed=seed, distribution=distribution)
    seed_engine = ContinuousJoinEngine.create(
        scenario.set_a, scenario.set_b, algorithm=algorithm, config=config_seed
    )
    col_engine = ColumnarJoinEngine(
        scenario.set_a, scenario.set_b, algorithm=algorithm, config=config_col
    )
    seed_engine.run_initial_join()
    col_engine.run_initial_join()
    stream = UpdateStream(scenario, seed=seed + 5)
    current = dict(seed_engine.objects_a)
    current.update(seed_engine.objects_b)
    for step in range(1, STEPS + 1):
        t = float(step)
        batch = stream.updates_for(t, current)
        for obj in batch:
            current[obj.oid] = obj
        seed_engine.tick(t)
        seed_engine.apply_updates(batch)
        col_engine.tick(t)
        col_engine.apply_updates(batch)
        assert seed_engine.result_at(t) == col_engine.result_at(t), f"t={t}"
    return seed_engine, col_engine


@pytest.mark.parametrize("algorithm", COLUMNAR_ALGORITHMS)
@pytest.mark.parametrize("use_kernels", [False, True])
@pytest.mark.parametrize("sanitize", [False, True])
def test_store_identical_to_seed_engine(algorithm, use_kernels, sanitize):
    seed_engine, col_engine = drive_both(
        algorithm,
        JoinConfig(t_m=T_M, use_kernels=use_kernels, sanitize=sanitize),
        JoinConfig(t_m=T_M, sanitize=sanitize),
    )
    assert dump(seed_engine._strategy.store) == dump(col_engine.store)
    assert len(col_engine.store) > 0  # the identity is not vacuous


@pytest.mark.parametrize("algorithm", COLUMNAR_ALGORITHMS)
@pytest.mark.parametrize("distribution", ["gaussian", "battlefield"])
def test_store_identical_across_distributions(algorithm, distribution):
    seed_engine, col_engine = drive_both(
        algorithm,
        JoinConfig(t_m=T_M),
        JoinConfig(t_m=T_M),
        distribution=distribution,
    )
    assert dump(seed_engine._strategy.store) == dump(col_engine.store)


def test_compile_kernels_flag_falls_back_cleanly():
    """Without Numba the flag must be a silent no-op, results unchanged."""
    _, plain = drive_both("mtb", JoinConfig(t_m=T_M), JoinConfig(t_m=T_M))
    _, flagged = drive_both(
        "mtb", JoinConfig(t_m=T_M), JoinConfig(t_m=T_M, compile_kernels=True)
    )
    assert dump(plain.store) == dump(flagged.store)


@pytest.mark.parametrize("shards", [1, 4])
def test_merged_sharded_store_equals_columnar(shards):
    from repro.par import ShardedJoinEngine

    arr = make_workload_arrays(
        N, "uniform", max_speed=3.0, object_size_pct=1.5, t_m=T_M, seed=31
    )
    scenario = arr.to_scenario()
    config = JoinConfig(t_m=T_M)
    sharded = ShardedJoinEngine(
        scenario.set_a, scenario.set_b, algorithm="mtb", config=config,
        shards=shards,
    )
    columnar = ColumnarJoinEngine(
        arr.columns_a(), arr.columns_b(), algorithm="mtb", config=config
    )
    sharded.run_initial_join()
    columnar.run_initial_join()
    stream_s = VectorUpdateStream(arr, seed=36)
    stream_c = VectorUpdateStream(
        make_workload_arrays(
            N, "uniform", max_speed=3.0, object_size_pct=1.5, t_m=T_M, seed=31
        ),
        seed=36,
    )
    for step in range(1, STEPS + 1):
        t = float(step)
        sharded.tick(t)
        upd_a, upd_b = stream_s.updates_at(t)
        sharded.apply_update_columns(upd_a, upd_b)
        columnar.tick(t)
        upd_a, upd_b = stream_c.updates_at(t)
        columnar.apply_update_columns(upd_a, upd_b)
    assert dump(sharded.merged_store()) == dump(columnar.store)
    sharded.close()


def test_admissions_and_evictions_match_seed():
    scenario = scenario_pair()
    config = JoinConfig(t_m=T_M)
    seed_engine = ContinuousJoinEngine.create(
        scenario.set_a[:40], scenario.set_b, algorithm="mtb", config=config
    )
    col_engine = ColumnarJoinEngine(
        scenario.set_a[:40], scenario.set_b, algorithm="mtb", config=config
    )
    seed_engine.run_initial_join()
    col_engine.run_initial_join()
    latecomers = scenario.set_a[40:50]
    victims = [o.oid for o in scenario.set_b[:5]]
    for step, obj in enumerate(latecomers, start=1):
        t = float(step)
        seed_engine.tick(t)
        col_engine.tick(t)
        arrival = obj.updated(t)
        seed_engine.apply_updates([], admit=[(arrival, "a")], evict=victims[:1])
        col_engine.apply_updates([], admit=[(arrival, "a")], evict=victims[:1])
        victims = victims[1:]
        assert seed_engine.result_at(t) == col_engine.result_at(t)
    assert dump(seed_engine._strategy.store) == dump(col_engine.store)


def test_simulation_driver_uses_columnar_fast_path():
    arr = make_workload_arrays(
        N, "uniform", max_speed=3.0, object_size_pct=1.5, t_m=T_M, seed=31
    )
    config = JoinConfig(t_m=T_M)
    engine = ColumnarJoinEngine(
        arr.columns_a(), arr.columns_b(), algorithm="mtb", config=config
    )
    engine.run_initial_join()
    driver = SimulationDriver(engine, VectorUpdateStream(arr, seed=36))
    assert driver._columnar_fast_path()
    stats = driver.run(STEPS)
    assert len(stats) == STEPS
    assert driver.total_updates() == engine.update_count
    # Same end state as the manual tick/apply loop.
    manual = ColumnarJoinEngine(
        arr.columns_a(), arr.columns_b(), algorithm="mtb", config=config
    )
    manual.run_initial_join()
    stream = VectorUpdateStream(
        make_workload_arrays(
            N, "uniform", max_speed=3.0, object_size_pct=1.5, t_m=T_M, seed=31
        ),
        seed=36,
    )
    for step in range(1, STEPS + 1):
        t = float(step)
        manual.tick(t)
        upd_a, upd_b = stream.updates_at(t)
        manual.apply_update_columns(upd_a, upd_b)
    assert dump(manual.store) == dump(engine.store)


def test_historical_batch_rejected():
    scenario = scenario_pair()
    engine = ColumnarJoinEngine(
        scenario.set_a, scenario.set_b, algorithm="tc", config=JoinConfig(t_m=T_M)
    )
    engine.run_initial_join()
    engine.tick(5.0)
    stale = scenario.set_a[0]  # t_ref == 0.0 != engine.now
    with pytest.raises(ValueError, match="t_ref"):
        engine.apply_updates([stale])


def test_prune_expired_matches_store_semantics():
    _, engine = drive_both("tc", JoinConfig(t_m=T_M), JoinConfig(t_m=T_M))
    before = len(engine.store)
    engine.tick(1000.0)
    dropped = engine.prune_expired()
    assert dropped == before
    assert len(engine.store) == 0
