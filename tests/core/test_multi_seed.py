"""Multi-seed confidence sweep for the flagship algorithm.

The engine tests already verify each algorithm against the oracle on a
handful of scenarios; this sweep pushes the flagship MTB strategy
through many independent seeds and parameter mixes to catch seed-
dependent corner cases (bucket boundaries, simultaneous updates,
crowded and empty regions).
"""

import pytest

from repro.core import ContinuousJoinEngine, JoinConfig, SimulationDriver
from repro.join import brute_force_pairs_at
from repro.workloads import UpdateStream, make_workload

CASES = [
    # (seed, distribution, n, t_m, speed, size_pct)
    (101, "uniform", 90, 7.0, 4.0, 1.5),
    (202, "gaussian", 90, 13.0, 2.0, 0.8),
    (303, "battlefield", 90, 9.0, 5.0, 2.0),
    (404, "uniform", 40, 3.0, 1.0, 4.0),
    (505, "gaussian", 150, 11.0, 3.0, 0.5),
]


@pytest.mark.parametrize(
    "seed,distribution,n,t_m,speed,size_pct",
    CASES,
    ids=[f"seed{c[0]}-{c[1]}" for c in CASES],
)
def test_mtb_exact_across_seeds(seed, distribution, n, t_m, speed, size_pct):
    scenario = make_workload(
        n, distribution, max_speed=speed, object_size_pct=size_pct,
        t_m=t_m, seed=seed,
    )
    engine = ContinuousJoinEngine.create(
        scenario.set_a, scenario.set_b, algorithm="mtb",
        config=JoinConfig(t_m=t_m),
    )
    engine.run_initial_join()
    driver = SimulationDriver(engine, UpdateStream(scenario, seed=seed + 1))
    for _ in range(int(2.5 * t_m)):
        driver.step()
        want = brute_force_pairs_at(
            engine.objects_a.values(), engine.objects_b.values(), engine.now
        )
        assert engine.result_at(engine.now) == want, engine.now
