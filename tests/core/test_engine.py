"""The continuous-join engine: every algorithm must answer exactly.

This is the central integration test of the reproduction: for each of
the four strategies, the maintained answer is compared against the
O(n²) oracle at every simulated timestamp of an update-heavy run.
"""

import pytest

from repro.core import ContinuousJoinEngine, JoinConfig, SimulationDriver
from repro.join import JoinTechniques, brute_force_pairs_at
from repro.objects import MovingObject
from repro.geometry import Box
from repro.workloads import UpdateStream, make_workload

ALGOS = ["naive", "etp", "tc", "mtb"]


def run_scenario(algorithm, n=120, steps=30, t_m=15.0, seed=2, distribution="uniform",
                 techniques=None):
    scenario = make_workload(
        n, distribution, max_speed=3.0, object_size_pct=1.0, t_m=t_m, seed=seed
    )
    config = JoinConfig(t_m=t_m)
    engine = ContinuousJoinEngine.create(
        scenario.set_a, scenario.set_b, algorithm=algorithm,
        config=config, techniques=techniques,
    )
    engine.run_initial_join()
    driver = SimulationDriver(engine, UpdateStream(scenario, seed=seed + 1))
    return scenario, engine, driver


class TestContinuousCorrectness:
    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_answer_equals_oracle_at_every_timestamp(self, algorithm):
        _scenario, engine, driver = run_scenario(algorithm)
        assert engine.result_at(0.0) == brute_force_pairs_at(
            engine.objects_a.values(), engine.objects_b.values(), 0.0
        )
        for _ in range(30):
            driver.step()
            t = engine.now
            want = brute_force_pairs_at(
                engine.objects_a.values(), engine.objects_b.values(), t
            )
            assert engine.result_at(t) == want, (algorithm, t)

    @pytest.mark.parametrize("algorithm", ["mtb", "tc"])
    def test_correct_on_battlefield(self, algorithm):
        _scenario, engine, driver = run_scenario(
            algorithm, distribution="battlefield", n=80, steps=20
        )
        for _ in range(20):
            driver.step()
            want = brute_force_pairs_at(
                engine.objects_a.values(), engine.objects_b.values(), engine.now
            )
            assert engine.result_at(engine.now) == want

    def test_mtb_with_plain_traversal(self):
        """MTB strategy with techniques disabled is still exact."""
        _scenario, engine, driver = run_scenario(
            "mtb", techniques=JoinTechniques.none(), n=80
        )
        for _ in range(15):
            driver.step()
            want = brute_force_pairs_at(
                engine.objects_a.values(), engine.objects_b.values(), engine.now
            )
            assert engine.result_at(engine.now) == want


class TestEngineAPI:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            ContinuousJoinEngine([], [], algorithm="quantum")

    def test_id_collision_rejected(self):
        a = [MovingObject(1, Box(0, 1, 0, 1), 0, 0, 0.0)]
        b = [MovingObject(1, Box(5, 6, 0, 1), 0, 0, 0.0)]
        with pytest.raises(ValueError):
            ContinuousJoinEngine(a, b)

    def test_unknown_update_rejected(self):
        _scenario, engine, _driver = run_scenario("mtb", n=20)
        with pytest.raises(KeyError):
            engine.apply_update(MovingObject(424242, Box(0, 1, 0, 1), 0, 0, 0.0))

    def test_time_cannot_go_backwards(self):
        _scenario, engine, _driver = run_scenario("mtb", n=20)
        engine.tick(5.0)
        with pytest.raises(ValueError):
            engine.tick(4.0)
        with pytest.raises(ValueError):
            engine.result_at(3.0)

    def test_cost_snapshots(self):
        scenario = make_workload(100, "uniform", t_m=20.0, seed=3)
        engine = ContinuousJoinEngine.create(
            scenario.set_a, scenario.set_b, algorithm="mtb",
            config=JoinConfig(t_m=20.0),
        )
        assert engine.build_cost.node_visits > 0
        cost = engine.run_initial_join()
        assert cost.pair_tests > 0
        assert engine.initial_join_cost is not None


class TestRelativeCosts:
    """The paper's qualitative cost ordering must hold."""

    def test_tc_cheaper_than_naive_maintenance(self):
        results = {}
        for algorithm in ("naive", "tc"):
            _sc, engine, driver = run_scenario(algorithm, n=150, seed=6)
            engine.tracker.reset()
            driver.run(10)
            results[algorithm] = engine.tracker.pair_tests
        assert results["tc"] < results["naive"]

    def test_mtb_cheaper_than_etp_maintenance(self):
        results = {}
        for algorithm in ("etp", "mtb"):
            _sc, engine, driver = run_scenario(algorithm, n=150, seed=6)
            engine.tracker.reset()
            driver.run(10)
            results[algorithm] = engine.tracker.pair_tests
        assert results["mtb"] * 5 < results["etp"]
