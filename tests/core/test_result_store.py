"""JoinResultStore: interval bookkeeping and per-object invalidation."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import JoinResultStore
from repro.geometry import INF, TimeInterval
from repro.geometry.constants import MERGE_TOL
from repro.join import JoinTriple


def triple(a, b, s, e):
    return JoinTriple(a, b, TimeInterval(s, e))


class TestBasics:
    def test_add_and_query(self):
        store = JoinResultStore()
        store.add(triple(1, 2, 0, 5))
        assert store.pairs_at(3) == {(1, 2)}
        assert store.pairs_at(6) == set()
        assert (1, 2) in store
        assert len(store) == 1

    def test_boundaries_inclusive(self):
        store = JoinResultStore()
        store.add(triple(1, 2, 2, 4))
        assert store.pairs_at(2) == {(1, 2)}
        assert store.pairs_at(4) == {(1, 2)}

    def test_multiple_intervals_merged(self):
        store = JoinResultStore()
        store.add(triple(1, 2, 0, 2))
        store.add(triple(1, 2, 5, 8))
        store.add(triple(1, 2, 2, 3))  # touches the first → merges
        assert store.intervals_for((1, 2)) == [TimeInterval(0, 3), TimeInterval(5, 8)]
        assert store.pairs_at(4) == set()
        assert store.pairs_at(6) == {(1, 2)}

    def test_unbounded(self):
        store = JoinResultStore()
        store.add(triple(1, 2, 3, INF))
        assert store.pairs_at(1e9) == {(1, 2)}

    def test_clear(self):
        store = JoinResultStore()
        store.add(triple(1, 2, 0, 1))
        store.clear()
        assert len(store) == 0


class TestInvalidation:
    def test_remove_object_drops_all_its_pairs(self):
        store = JoinResultStore()
        store.add(triple(1, 10, 0, 9))
        store.add(triple(1, 11, 0, 9))
        store.add(triple(2, 10, 0, 9))
        assert store.remove_object(1) == 2
        assert store.pairs_at(5) == {(2, 10)}

    def test_remove_other_side(self):
        store = JoinResultStore()
        store.add(triple(1, 10, 0, 9))
        store.add(triple(2, 10, 0, 9))
        assert store.remove_object(10) == 2
        assert store.pairs_at(5) == set()

    def test_remove_unknown_is_noop(self):
        store = JoinResultStore()
        assert store.remove_object(42) == 0

    def test_readd_after_remove(self):
        store = JoinResultStore()
        store.add(triple(1, 10, 0, 9))
        store.remove_object(1)
        store.add(triple(1, 10, 4, 6))
        assert store.intervals_for((1, 10)) == [TimeInterval(4, 6)]

    def test_prune_expired(self):
        store = JoinResultStore()
        store.add(triple(1, 10, 0, 3))
        store.add(triple(2, 10, 0, 20))
        assert store.prune_expired(10.0) == 1
        assert (1, 10) not in store
        assert store.pairs_at(15) == {(2, 10)}

    def test_prune_keeps_live_intervals_of_mixed_pairs(self):
        store = JoinResultStore()
        store.add(triple(1, 10, 0, 3))
        store.add(triple(1, 10, 8, 12))
        store.prune_expired(5.0)
        assert store.intervals_for((1, 10)) == [TimeInterval(8, 12)]


class TestPruneFrontierTrace:
    """Hand-computed trace of the lazy min-expiry heap.

    Exercises every frontier transition: push on new pair, silent tail
    append, re-push on merge, re-push on partial trim, and stale-entry
    skips for both re-merged and removed pairs.
    """

    def test_hand_computed_heap_trace(self):
        store = JoinResultStore()
        store.add(triple(1, 10, 0, 4))    # push (4, (1,10))
        store.add(triple(1, 10, 10, 12))  # tail append: no push
        store.add(triple(2, 10, 0, 6))    # push (6, (2,10))
        store.add(triple(3, 10, 5, 9))    # push (9, (3,10))
        store.add(triple(2, 10, 5.5, 7))  # overlap → merge [0,7], push (7,(2,10))
        assert sorted(store._frontier) == [
            (4.0, (1, 10)),
            (6.0, (2, 10)),   # stale: (2,10) re-merged to first end 7
            (7.0, (2, 10)),
            (9.0, (3, 10)),
        ]
        store.remove_object(3)  # leaves (9,(3,10)) behind as stale

        # t=5: pops (4,(1,10)) — live, trims [0,4] off, re-pushes
        # (12,(1,10)); next top is 6 ≥ 5 so the stale entry stays put.
        assert store.prune_expired(5.0) == 0
        assert store.intervals_for((1, 10)) == [TimeInterval(10, 12)]
        assert store.intervals_for((2, 10)) == [TimeInterval(0, 7)]
        assert sorted(store._frontier) == [
            (6.0, (2, 10)),
            (7.0, (2, 10)),
            (9.0, (3, 10)),
            (12.0, (1, 10)),
        ]

        # t=8: pops (6,(2,10)) — stale (stored first end is 7), skipped;
        # pops (7,(2,10)) — live and fully expired, pair dropped;
        # stops at (9,(3,10)) since 9 ≥ 8.
        assert store.prune_expired(8.0) == 1
        assert (2, 10) not in store
        assert store.pairs_at(11) == {(1, 10)}
        assert sorted(store._frontier) == [(9.0, (3, 10)), (12.0, (1, 10))]
        assert store._by_oid == {1: {(1, 10)}, 10: {(1, 10)}}

        # t=20: (9,(3,10)) is stale (pair removed earlier), skipped
        # without counting; (12,(1,10)) expires for real.
        assert store.prune_expired(20.0) == 1
        assert len(store) == 0
        assert store._frontier == []
        assert store._by_oid == {}


class TestAgainstReferenceModel:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 5),          # a
                st.integers(10, 15),        # b
                st.floats(0, 50, allow_nan=False),
                st.floats(0, 10, allow_nan=False),
            ),
            max_size=40,
        ),
        st.floats(0, 60, allow_nan=False),
    )
    @settings(max_examples=200)
    def test_pairs_at_matches_naive_model(self, adds, t):
        # The model must mirror the store's documented merge rule:
        # per-pair gaps no wider than MERGE_TOL are glued shut, so a
        # query inside such a micro-gap still reports the pair.
        store = JoinResultStore()
        spans = {}
        for a, b, s, length in adds:
            store.add(triple(a, b, s, s + length))
            spans.setdefault((a, b), []).append((s, s + length))
        want = set()
        for key, ivs in spans.items():
            merged = []
            for s, e in sorted(ivs):
                if merged and s <= merged[-1][1] + MERGE_TOL:
                    merged[-1][1] = max(merged[-1][1], e)
                else:
                    merged.append([s, e])
            if any(s <= t <= e for s, e in merged):
                want.add(key)
        assert store.pairs_at(t) == want

    def test_random_interleaving_with_removals(self):
        rng = random.Random(12)
        store = JoinResultStore()
        model = []
        for step in range(800):
            op = rng.random()
            if op < 0.7:
                a, b = rng.randint(0, 8), rng.randint(100, 108)
                s = rng.uniform(0, 40)
                e = s + rng.uniform(0, 10)
                store.add(triple(a, b, s, e))
                model.append((a, b, s, e))
            else:
                victim = rng.randint(0, 8) if op < 0.85 else rng.randint(100, 108)
                store.remove_object(victim)
                model = [m for m in model if victim not in (m[0], m[1])]
            if step % 50 == 0:
                t = rng.uniform(0, 50)
                want = {(a, b) for a, b, s, e in model if s <= t <= e}
                assert store.pairs_at(t) == want, step
