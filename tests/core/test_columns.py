"""Unit tests for the columnar object store (``repro.core.columns``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ColumnStore, UpdateColumns, columns_from_objects
from repro.geometry.kernels import KineticBatch
from repro.workloads import make_workload


def some_objects(n=40, seed=3):
    return make_workload(n, "uniform", max_speed=3.0, seed=seed).set_a


class TestUpdateColumns:
    def test_round_trip_through_objects(self):
        objs = some_objects()
        cols = columns_from_objects(objs)
        back = cols.objects()
        assert [o.oid for o in back] == [o.oid for o in objs]
        for a, b in zip(objs, back):
            assert a.kbox.params() == b.kbox.params()

    def test_empty(self):
        cols = UpdateColumns.empty()
        assert len(cols) == 0
        assert cols.objects() == []


class TestColumnStore:
    def test_add_assigns_dense_rows_and_ids(self):
        objs = some_objects(20)
        store = ColumnStore()
        rows = store.add(columns_from_objects(objs))
        assert rows.tolist() == list(range(20))
        assert len(store) == 20
        for i, obj in enumerate(objs):
            assert store.row_of(obj.oid) == i
            assert int(store.oid[i]) == obj.oid
            assert obj.oid in store

    def test_add_rejects_duplicate_ids(self):
        objs = some_objects(5)
        store = ColumnStore.from_objects(objs)
        with pytest.raises(ValueError, match="already stored"):
            store.add(columns_from_objects(objs[:1]))

    def test_growth_preserves_contents(self):
        objs = some_objects(100)
        store = ColumnStore(capacity=8)  # forces several doublings
        for k in range(0, 100, 7):
            store.add(columns_from_objects(objs[k : k + 7]))
        assert len(store) == 100
        for obj in objs:
            assert store.get(obj.oid).kbox.params() == obj.kbox.params()

    def test_apply_overwrites_in_place(self):
        objs = some_objects(10)
        store = ColumnStore.from_objects(objs)
        moved = some_objects(10, seed=9)
        upd = columns_from_objects(
            [type(o)(objs[i].oid, o.kbox.mbr, 1.0, -1.0, t_ref=2.0)
             for i, o in enumerate(moved)]
        )
        rows = store.apply(upd)
        assert rows.tolist() == list(range(10))
        assert len(store) == 10
        assert np.all(store.tref[:10] == 2.0)  # noqa: RC001

    def test_remove_swaps_with_last(self):
        objs = some_objects(6)
        store = ColumnStore.from_objects(objs)
        victim = objs[1].oid
        mover = objs[5].oid
        store.remove([victim])
        assert len(store) == 5
        assert victim not in store
        # The former last row moved into the vacated slot, id map intact.
        assert store.row_of(mover) == 1
        assert store.get(mover).kbox.params() == objs[5].kbox.params()
        # Remaining ids all resolve.
        for obj in objs:
            if obj.oid != victim:
                assert store.get(obj.oid).kbox.params() == obj.kbox.params()

    def test_remove_last_row(self):
        objs = some_objects(3)
        store = ColumnStore.from_objects(objs)
        store.remove([objs[2].oid])
        assert len(store) == 2
        assert objs[2].oid not in store

    def test_batch_view_is_zero_copy_and_bit_exact(self):
        objs = some_objects(30)
        store = ColumnStore.from_objects(objs)
        view = store.batch()
        fresh = KineticBatch.from_boxes([o.kbox for o in objs])
        for name in ("mlo", "mhi", "vlo", "vhi", "slo", "shi"):
            assert np.array_equal(getattr(view, name), getattr(fresh, name)), name
            assert getattr(view, name).base is getattr(store, name)
        assert np.array_equal(view.tref, fresh.tref)

    def test_shift_maintained_incrementally(self):
        objs = some_objects(12)
        store = ColumnStore.from_objects(objs)
        upd = columns_from_objects(
            [type(o)(o.oid, o.kbox.mbr, -0.5, 0.75, t_ref=3.0) for o in objs[:4]]
        )
        store.apply(upd)
        view = store.batch()
        fresh = KineticBatch.from_boxes([o.kbox for o in store.objects()])
        assert np.array_equal(view.slo, fresh.slo)
        assert np.array_equal(view.shi, fresh.shi)

    def test_gather(self):
        objs = some_objects(15)
        store = ColumnStore.from_objects(objs)
        rows = np.asarray([2, 7, 11])
        sub = store.gather(rows)
        assert sub.mlo.shape == (2, 3)
        assert np.array_equal(sub.tref, store.tref[rows])

    def test_bucket_keys_match_scalar_rule(self):
        store = ColumnStore()
        objs = some_objects(9)
        cols = columns_from_objects(objs)
        cols.tref[:] = [0.0, 5.0, 9.9, 10.0, 15.0, 19.99, 20.0, 25.0, 31.0]
        store.add(cols)
        keys = store.bucket_keys(10.0)
        assert keys.tolist() == [int(t // 10.0) for t in cols.tref.tolist()]

    def test_objects_view_mapping(self):
        objs = some_objects(8)
        store = ColumnStore.from_objects(objs)
        view = store.as_mapping()
        assert len(view) == 8
        assert set(view) == {o.oid for o in objs}
        assert view[objs[3].oid].kbox.params() == objs[3].kbox.params()
        with pytest.raises(KeyError):
            view[999_999]
