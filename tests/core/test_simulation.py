"""Tests for the simulation driver and metrics plumbing."""

import pytest

from repro.core import ContinuousJoinEngine, JoinConfig, SimulationDriver
from repro.metrics import CostSnapshot, CostTracker
from repro.workloads import UpdateStream, uniform_workload


def make_driver(algorithm="mtb", n=80, t_m=10.0, seed=1):
    scenario = uniform_workload(n, seed=seed, t_m=t_m, object_size_pct=1.0)
    engine = ContinuousJoinEngine.create(
        scenario.set_a, scenario.set_b, algorithm=algorithm,
        config=JoinConfig(t_m=t_m),
    )
    engine.run_initial_join()
    return engine, SimulationDriver(engine, UpdateStream(scenario, seed=seed + 9))


class TestDriver:
    def test_step_advances_clock_and_records(self):
        engine, driver = make_driver()
        stats = driver.step()
        assert stats.timestamp == 1.0
        assert engine.now == 1.0
        assert len(driver.history) == 1

    def test_run_returns_stats_per_step(self):
        _engine, driver = make_driver()
        stats = driver.run(12)
        assert len(stats) == 12
        assert [s.timestamp for s in stats] == [float(t) for t in range(1, 13)]

    def test_every_object_updates_within_tm(self):
        engine, driver = make_driver(t_m=10.0)
        driver.run(25)
        # After T_M steps, no stored reference time is older than T_M.
        for obj in list(engine.objects_a.values()) + list(engine.objects_b.values()):
            assert engine.now - obj.t_ref <= 10.0

    def test_on_step_callback(self):
        _engine, driver = make_driver()
        seen = []
        driver.run(5, on_step=lambda s: seen.append(s.timestamp))
        assert seen == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_amortized_cost(self):
        _engine, driver = make_driver()
        driver.run(15)
        amortized = driver.amortized_cost()
        assert driver.total_updates() > 0
        assert amortized.pair_tests >= 0
        assert amortized.cpu_seconds >= 0


class TestMetrics:
    def test_snapshot_diff_and_scale(self):
        tracker = CostTracker()
        tracker.count_read(10)
        tracker.count_write(4)
        tracker.count_pair_tests(100)
        before = tracker.snapshot()
        tracker.count_read(5)
        tracker.count_pair_tests(50)
        delta = tracker.snapshot() - before
        assert delta.page_reads == 5
        assert delta.pair_tests == 50
        assert delta.io_total == 5
        scaled = delta.scaled(5)
        assert scaled.page_reads == 1
        assert scaled.pair_tests == 10

    def test_scale_invalid(self):
        snap = CostSnapshot(1, 1, 1, 1, 1.0)
        with pytest.raises(ValueError):
            snap.scaled(0)

    def test_timed_accumulates(self):
        tracker = CostTracker()
        with tracker.timed():
            sum(range(1000))
        assert tracker.cpu_seconds > 0

    def test_reset(self):
        tracker = CostTracker()
        tracker.count_node_visit(3)
        tracker.reset()
        assert tracker.snapshot().node_visits == 0

    def test_as_dict(self):
        snap = CostSnapshot(1, 2, 3, 4, 5.0)
        d = snap.as_dict()
        assert d["io_total"] == 3
        assert d["pair_tests"] == 3
        assert d["cpu_seconds"] == 5.0
