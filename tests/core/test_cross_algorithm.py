"""Cross-algorithm equivalence: all four engines answer identically.

Rather than comparing each engine to the brute-force oracle (done in
``test_engine.py``), this suite runs the *same* scenario through every
algorithm in lockstep and requires snapshot-identical answers at every
timestamp — the strongest black-box statement of the paper's claim that
TC/MTB processing changes cost, never results.
"""

import pytest

from repro.core import ALGORITHMS, ContinuousJoinEngine, JoinConfig
from repro.workloads import UpdateStream, make_workload


def run_lockstep(distribution, n=90, t_m=10.0, steps=22, seed=31):
    scenario = make_workload(
        n, distribution, max_speed=3.0, object_size_pct=1.2, t_m=t_m, seed=seed
    )
    config = JoinConfig(t_m=t_m)
    engines = {}
    streams = {}
    for algorithm in ALGORITHMS:
        engines[algorithm] = ContinuousJoinEngine.create(
            scenario.set_a, scenario.set_b, algorithm=algorithm, config=config
        )
        engines[algorithm].run_initial_join()
        # Identical seed → identical update stream per engine.
        streams[algorithm] = UpdateStream(scenario, seed=seed + 5)
    snapshots = []
    for step in range(1, steps + 1):
        t = float(step)
        answers = {}
        for algorithm in ALGORITHMS:
            engine = engines[algorithm]
            engine.tick(t)
            current = {**engine.objects_a, **engine.objects_b}
            for obj in streams[algorithm].updates_for(t, current):
                engine.apply_update(obj)
            answers[algorithm] = engine.result_at(t)
        snapshots.append((t, answers))
    return snapshots


@pytest.mark.parametrize("distribution", ["uniform", "gaussian", "battlefield"])
def test_all_algorithms_identical(distribution):
    for t, answers in run_lockstep(distribution):
        baseline = answers["naive"]
        for algorithm, answer in answers.items():
            assert answer == baseline, (distribution, t, algorithm)


def test_all_algorithms_identical_fast_small_objects():
    """High speed + tiny objects: many short-lived pairs."""
    for t, answers in run_lockstep("uniform", n=70, t_m=6.0, seed=77):
        baseline = answers["naive"]
        for algorithm, answer in answers.items():
            assert answer == baseline, (t, algorithm)
