"""Change monitoring: deltas must track the answer exactly."""

from repro.core import (
    ChangeMonitor,
    ContinuousJoinEngine,
    JoinConfig,
    ResultDelta,
    SimulationDriver,
)
from repro.workloads import UpdateStream, uniform_workload


class TestResultDelta:
    def test_between(self):
        delta = ResultDelta.between({(1, 2), (3, 4)}, {(3, 4), (5, 6)})
        assert delta.entered == {(5, 6)}
        assert delta.left == {(1, 2)}
        assert not delta.is_empty

    def test_empty(self):
        delta = ResultDelta.between({(1, 2)}, {(1, 2)})
        assert delta.is_empty


class TestChangeMonitor:
    def make(self):
        scenario = uniform_workload(
            120, seed=4, max_speed=3.0, object_size_pct=1.0, t_m=12.0
        )
        engine = ContinuousJoinEngine.create(
            scenario.set_a, scenario.set_b, algorithm="mtb",
            config=JoinConfig(t_m=12.0),
        )
        engine.run_initial_join()
        driver = SimulationDriver(engine, UpdateStream(scenario, seed=9))
        return engine, driver

    def test_deltas_replay_to_current_answer(self):
        engine, driver = self.make()
        monitor = ChangeMonitor(engine)
        replayed = set(monitor.current_pairs)
        for _ in range(20):
            driver.step()
            delta = monitor.poll()
            replayed -= set(delta.left)
            replayed |= set(delta.entered)
            assert replayed == engine.result_at(engine.now)

    def test_callbacks_invoked_with_timestamps(self):
        engine, driver = self.make()
        events = []
        monitor = ChangeMonitor(engine, on_change=lambda t, d: events.append((t, d)))
        for _ in range(15):
            driver.step()
            monitor.poll()
        assert events, "20 steps of churn should change the answer"
        for t, delta in events:
            assert not delta.is_empty
            assert 0 < t <= engine.now

    def test_subscribe_multiple(self):
        engine, driver = self.make()
        hits = {"a": 0, "b": 0}
        monitor = ChangeMonitor(engine)
        monitor.subscribe(lambda t, d: hits.__setitem__("a", hits["a"] + 1))
        monitor.subscribe(lambda t, d: hits.__setitem__("b", hits["b"] + 1))
        for _ in range(15):
            driver.step()
            monitor.poll()
        assert hits["a"] == hits["b"] > 0

    def test_totals_accumulate(self):
        engine, driver = self.make()
        monitor = ChangeMonitor(engine)
        entered = left = 0
        for _ in range(15):
            driver.step()
            delta = monitor.poll()
            entered += len(delta.entered)
            left += len(delta.left)
        assert monitor.total_entered == entered
        assert monitor.total_left == left

    def test_no_change_no_callback(self):
        engine, _driver = self.make()
        calls = []
        monitor = ChangeMonitor(engine, on_change=lambda t, d: calls.append(1))
        # Poll without advancing: answer unchanged → no callback.
        delta = monitor.poll()
        assert delta.is_empty
        assert calls == []
