"""Engine-level ablation: ``use_kernels`` never changes the answer.

The vectorized kernels are a pure performance substitution — every
algorithm must report the *identical* continuous-join answer with the
flag on or off, at every timestamp of a churning workload.  This is the
acceptance criterion of the kernels PR, stated as a test: run the same
scenario twice per algorithm, once per flag value, and require
snapshot-identical ``result_at`` throughout.
"""

import pytest

from repro.core import ALGORITHMS, ContinuousJoinEngine, JoinConfig
from repro.workloads import UpdateStream, make_workload


def run_snapshots(algorithm, use_kernels, n=70, t_m=8.0, steps=14, seed=19):
    scenario = make_workload(
        n, "uniform", max_speed=3.0, object_size_pct=1.2, t_m=t_m, seed=seed
    )
    config = JoinConfig(t_m=t_m, use_kernels=use_kernels)
    engine = ContinuousJoinEngine.create(
        scenario.set_a, scenario.set_b, algorithm=algorithm, config=config
    )
    engine.run_initial_join()
    stream = UpdateStream(scenario, seed=seed + 5)
    snapshots = []
    for step in range(1, steps + 1):
        t = float(step)
        engine.tick(t)
        current = {**engine.objects_a, **engine.objects_b}
        for obj in stream.updates_for(t, current):
            engine.apply_update(obj)
        snapshots.append((t, engine.result_at(t)))
    return snapshots


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_result_identical_with_and_without_kernels(algorithm):
    with_kernels = run_snapshots(algorithm, use_kernels=True)
    without = run_snapshots(algorithm, use_kernels=False)
    for (t, answer_on), (_, answer_off) in zip(with_kernels, without):
        assert answer_on == answer_off, (algorithm, t)


def test_flag_reaches_the_trees():
    scenario = make_workload(10, "uniform", t_m=10.0, seed=3)
    for flag in (True, False):
        engine = ContinuousJoinEngine.create(
            scenario.set_a,
            scenario.set_b,
            algorithm="etp",
            config=JoinConfig(t_m=10.0, use_kernels=flag),
        )
        assert engine._strategy.tree_a.use_kernels == flag
        assert engine._strategy.tree_b.use_kernels == flag
