"""Tests for JoinConfig validation and derived values."""

import pytest

from repro.core import JoinConfig


class TestJoinConfig:
    def test_defaults_match_table_i(self):
        config = JoinConfig()
        assert config.space_size == 1000.0
        assert config.t_m == 60.0
        assert config.node_capacity == 30
        assert config.page_size == 4096
        assert config.buffer_pages == 50
        assert config.buckets_per_tm == 2

    def test_effective_horizon_defaults_to_tm(self):
        assert JoinConfig(t_m=120.0).effective_horizon == 120.0
        assert JoinConfig(t_m=120.0, horizon=40.0).effective_horizon == 40.0

    def test_bucket_length(self):
        assert JoinConfig(t_m=60.0, buckets_per_tm=2).bucket_length == 30.0
        assert JoinConfig(t_m=60.0, buckets_per_tm=4).bucket_length == 15.0

    def test_frozen(self):
        config = JoinConfig()
        with pytest.raises(AttributeError):
            config.t_m = 5.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"space_size": 0},
            {"t_m": 0},
            {"t_m": -5},
            {"buckets_per_tm": 0},
            {"horizon": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            JoinConfig(**kwargs)
