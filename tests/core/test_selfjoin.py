"""Continuous self-join vs the brute-force intra-set oracle."""

import pytest

from repro.core import ContinuousSelfJoinEngine, JoinConfig
from repro.workloads import UpdateStream, uniform_workload


def oracle_pairs(objects, t):
    pairs = set()
    items = list(objects.values())
    for i, a in enumerate(items):
        box_a = a.mbr_at(t)
        for b in items[i + 1 :]:
            if box_a.intersects(b.mbr_at(t)):
                lo, hi = sorted((a.oid, b.oid))
                pairs.add((lo, hi))
    return pairs


def build(n=120, t_m=12.0, seed=14):
    scenario = uniform_workload(
        n, seed=seed, max_speed=3.0, object_size_pct=1.5, t_m=t_m
    )
    engine = ContinuousSelfJoinEngine(scenario.set_a, JoinConfig(t_m=t_m))
    engine.run_initial_join()
    return scenario, engine


class TestSelfJoin:
    def test_initial_answer(self):
        _scenario, engine = build()
        assert engine.result_at(0.0) == oracle_pairs(engine.objects, 0.0)
        assert engine.result_at(0.0), "workload should produce pairs"

    def test_no_reflexive_pairs(self):
        _scenario, engine = build()
        for a, b in engine.result_at(0.0):
            assert a < b

    def test_continuous_correctness_under_updates(self):
        scenario, engine = build()
        stream = UpdateStream(scenario, seed=3)
        shadow_b = {o.oid: o for o in scenario.set_b}
        for step in range(1, 30):
            t = float(step)
            engine.tick(t)
            for obj in stream.updates_for(t, {**engine.objects, **shadow_b}):
                if obj.oid in engine.objects:
                    engine.apply_update(obj)
                else:
                    shadow_b[obj.oid] = obj
            assert engine.result_at() == oracle_pairs(engine.objects, t), t

    def test_partners_of(self):
        _scenario, engine = build()
        pairs = engine.result_at(0.0)
        some_oid = next(iter(pairs))[0]
        partners = engine.partners_of(some_oid, 0.0)
        assert partners
        for other in partners:
            lo, hi = sorted((some_oid, other))
            assert (lo, hi) in pairs

    def test_duplicate_ids_rejected(self):
        scenario = uniform_workload(10, seed=1)
        with pytest.raises(ValueError):
            ContinuousSelfJoinEngine(scenario.set_a + [scenario.set_a[0]])

    def test_unknown_update_rejected(self):
        scenario, engine = build(n=20)
        with pytest.raises(KeyError):
            engine.apply_update(scenario.set_b[0])

    def test_clock_monotone(self):
        _scenario, engine = build(n=20)
        engine.tick(3.0)
        with pytest.raises(ValueError):
            engine.tick(2.0)

    def test_multi_bucket_initial_join(self):
        """Initial join across several populated buckets stays exact."""
        scenario = uniform_workload(
            90, seed=20, max_speed=3.0, object_size_pct=1.5, t_m=12.0
        )
        engine = ContinuousSelfJoinEngine(
            scenario.set_a[:45], JoinConfig(t_m=12.0)
        )
        engine.tick(8.0)
        for obj in scenario.set_a[45:]:
            aged = obj.updated(8.0)
            engine.objects[aged.oid] = aged
            engine.forest.insert(aged, 8.0)
        assert engine.forest.num_buckets == 2
        engine.run_initial_join()
        assert engine.result_at(8.0) == oracle_pairs(engine.objects, 8.0)
