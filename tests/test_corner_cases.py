"""Corner cases across the stack: degenerate workloads that historically
break spatial index implementations."""

import pytest

from repro.core import ContinuousJoinEngine, JoinConfig
from repro.geometry import Box, INF, KineticBox
from repro.index import TPRStarTree
from repro.join import brute_force_join, brute_force_pairs_at, naive_join, tc_join
from repro.objects import MovingObject


class TestStaticWorlds:
    """Zero velocity everywhere: the join degenerates to the static case."""

    def make_static(self, n=100, seed=0):
        import random

        rng = random.Random(seed)
        objs_a, objs_b = [], []
        for i in range(n):
            x, y = rng.uniform(0, 500), rng.uniform(0, 500)
            objs_a.append(MovingObject(i, Box(x, x + 8, y, y + 8), 0, 0, 0.0))
            x, y = rng.uniform(0, 500), rng.uniform(0, 500)
            objs_b.append(
                MovingObject(10000 + i, Box(x, x + 8, y, y + 8), 0, 0, 0.0)
            )
        return objs_a, objs_b

    def test_static_join_intervals_span_window(self):
        objs_a, objs_b = self.make_static()
        for triple in brute_force_join(objs_a, objs_b, 0.0, 60.0):
            assert triple.interval.start == 0.0
            assert triple.interval.end == 60.0

    def test_static_unbounded_naive_join(self):
        objs_a, objs_b = self.make_static()
        tree_a, tree_b = TPRStarTree(), TPRStarTree()
        tree_b.storage = tree_a.storage  # share tracker for the assert below
        tree_b = TPRStarTree(storage=tree_a.storage)
        for o in objs_a:
            tree_a.insert(o, 0.0)
        for o in objs_b:
            tree_b.insert(o, 0.0)
        got = {(t.a_oid, t.b_oid) for t in naive_join(tree_a, tree_b, 0.0, INF)}
        want = brute_force_pairs_at(objs_a, objs_b, 0.0)
        assert got == want
        # Static + unbounded: every found interval is [0, inf).
        for triple in naive_join(tree_a, tree_b, 0.0, INF):
            assert triple.interval.end == INF


class TestStackedObjects:
    """Many objects at the exact same position: splits must terminate and
    every pair must be reported."""

    def test_identical_positions(self):
        objs_a = [
            MovingObject(i, Box(10, 12, 10, 12), 1.0, -1.0, 0.0) for i in range(80)
        ]
        objs_b = [
            MovingObject(1000 + i, Box(11, 13, 11, 13), 1.0, -1.0, 0.0)
            for i in range(80)
        ]
        storage_tree = TPRStarTree(node_capacity=8)
        tree_b = TPRStarTree(storage=storage_tree.storage, node_capacity=8)
        for o in objs_a:
            storage_tree.insert(o, 0.0)
        for o in objs_b:
            tree_b.insert(o, 0.0)
        storage_tree.validate(0.0)
        triples = tc_join(storage_tree, tree_b, 0.0, 30.0)
        assert len(triples) == 80 * 80  # everyone overlaps everyone

    def test_engine_with_stacked_objects(self):
        objs_a = [MovingObject(i, Box(0, 2, 0, 2), 0.5, 0.5, 0.0) for i in range(30)]
        objs_b = [
            MovingObject(100 + i, Box(1, 3, 1, 3), 0.5, 0.5, 0.0) for i in range(30)
        ]
        engine = ContinuousJoinEngine.create(
            objs_a, objs_b, algorithm="mtb", config=JoinConfig(t_m=10.0)
        )
        engine.run_initial_join()
        assert len(engine.result_at(0.0)) == 900


class TestSingletons:
    @pytest.mark.parametrize("algorithm", ["naive", "etp", "tc", "mtb"])
    def test_one_object_each(self, algorithm):
        a = MovingObject(1, Box(0, 1, 0, 1), 1.0, 0.0, 0.0)
        b = MovingObject(2, Box(9, 10, 0, 1), -1.0, 0.0, 0.0)
        engine = ContinuousJoinEngine.create(
            [a], [b], algorithm=algorithm, config=JoinConfig(t_m=100.0)
        )
        engine.run_initial_join()
        assert engine.result_at(0.0) == set()
        engine.tick(4.5)  # they overlap during [4, 5]
        assert engine.result_at(4.5) == {(1, 2)}
        engine.tick(6.0)
        assert engine.result_at(6.0) == set()

    def test_exact_separation_instant_conventions(self):
        """At the exact instant two objects stop touching, the interval
        strategies use closed semantics (pair included) while ETP uses
        the TP 'valid immediately after' convention (pair excluded).
        Both are defensible; answers differ only on this measure-zero
        set and agree at every other time."""
        a = MovingObject(1, Box(0, 1, 0, 1), 1.0, 0.0, 0.0)
        b = MovingObject(2, Box(9, 10, 0, 1), -1.0, 0.0, 0.0)
        for algorithm, expected in (("mtb", {(1, 2)}), ("etp", set())):
            engine = ContinuousJoinEngine.create(
                [a], [b], algorithm=algorithm, config=JoinConfig(t_m=100.0)
            )
            engine.run_initial_join()
            engine.tick(5.0)  # separation instant
            assert engine.result_at(5.0) == expected, algorithm

    @pytest.mark.parametrize("algorithm", ["naive", "tc", "mtb", "etp"])
    def test_empty_b_side(self, algorithm):
        a = MovingObject(1, Box(0, 1, 0, 1), 1.0, 0.0, 0.0)
        engine = ContinuousJoinEngine.create(
            [a], [], algorithm=algorithm, config=JoinConfig(t_m=10.0)
        )
        engine.run_initial_join()
        assert engine.result_at(0.0) == set()


class TestPointObjects:
    """Zero-extent objects (moving points) are legal box degenerations."""

    def test_point_join(self):
        a = MovingObject(1, Box.point(0, 0), 1.0, 1.0, 0.0)
        b = MovingObject(2, Box.point(4, 4), 0.0, 0.0, 0.0)
        [triple] = brute_force_join([a], [b], 0.0, 10.0)
        assert triple.interval.start == pytest.approx(4.0)
        assert triple.interval.end == pytest.approx(4.0)

    def test_points_in_tree(self):
        import random

        rng = random.Random(3)
        tree_a = TPRStarTree()
        tree_b = TPRStarTree(storage=tree_a.storage)
        objs_a, objs_b = [], []
        for i in range(60):
            x, y = rng.uniform(0, 50), rng.uniform(0, 50)
            obj = MovingObject(
                i, Box.point(x, y), rng.uniform(-2, 2), rng.uniform(-2, 2), 0.0
            )
            objs_a.append(obj)
            tree_a.insert(obj, 0.0)
            x, y = rng.uniform(0, 50), rng.uniform(0, 50)
            obj = MovingObject(
                1000 + i, Box.point(x, y), rng.uniform(-2, 2), rng.uniform(-2, 2), 0.0
            )
            objs_b.append(obj)
            tree_b.insert(obj, 0.0)
        tree_a.validate(0.0)
        got = sorted((t.a_oid, t.b_oid) for t in tc_join(tree_a, tree_b, 0.0, 20.0))
        want = sorted(
            (t.a_oid, t.b_oid) for t in brute_force_join(objs_a, objs_b, 0.0, 20.0)
        )
        assert got == want


class TestExtremeParameters:
    def test_huge_tm(self):
        a = MovingObject(1, Box(0, 1, 0, 1), 0.001, 0, 0.0)
        b = MovingObject(2, Box(500, 501, 0, 1), 0, 0, 0.0)
        engine = ContinuousJoinEngine.create(
            [a], [b], algorithm="tc", config=JoinConfig(t_m=1e6)
        )
        engine.run_initial_join()
        # Meets at t ≈ 499000, far in the future but within T_M.
        assert engine.result_at(0.0) == set()

    def test_very_fast_objects(self):
        q = KineticBox.rigid(Box(0, 1000, 0, 1000), 0, 0, 0.0)
        tree = TPRStarTree()
        objs = []
        import random

        rng = random.Random(8)
        for i in range(100):
            x, y = rng.uniform(0, 1000), rng.uniform(0, 1000)
            obj = MovingObject(
                i, Box(x, x + 5, y, y + 5),
                rng.uniform(-500, 500), rng.uniform(-500, 500), 0.0,
            )
            objs.append(obj)
            tree.insert(obj, 0.0)
        tree.validate(0.0)
        hits = {oid for oid, _ in tree.search(q, 0.0, 1.0)}
        assert hits == {o.oid for o in objs}
