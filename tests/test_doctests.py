"""Run the usage doctests embedded in the library's docstrings.

Keeps every ``>>>`` example in the public API honest.
"""

import doctest

import pytest

import repro.analysis
import repro.geometry.box
import repro.geometry.interval
import repro.geometry.intersection
import repro.geometry.kinetic
import repro.index.bulk
import repro.index.stats
import repro.metrics
import repro.objects
import repro.storage.buffer
import repro.storage.disk
import repro.storage.file_disk
import repro.storage.serializer

MODULES = [
    repro.geometry.interval,
    repro.geometry.box,
    repro.geometry.kinetic,
    repro.geometry.intersection,
    repro.objects,
    repro.metrics,
    repro.storage.disk,
    repro.storage.buffer,
    repro.storage.serializer,
    repro.storage.file_disk,
    repro.index.bulk,
    repro.index.stats,
    repro.analysis,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module}"
