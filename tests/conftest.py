"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from typing import List

import pytest

from repro.geometry import Box, KineticBox
from repro.objects import MovingObject


def random_kbox(
    rng: random.Random,
    space: float = 100.0,
    max_side: float = 5.0,
    max_speed: float = 3.0,
    t_ref_range: "tuple[float, float]" = (0.0, 2.0),
) -> KineticBox:
    """A random rigid moving rectangle."""
    x = rng.uniform(0, space)
    y = rng.uniform(0, space)
    w = rng.uniform(0.1, max_side)
    h = rng.uniform(0.1, max_side)
    vx = rng.uniform(-max_speed, max_speed)
    vy = rng.uniform(-max_speed, max_speed)
    t_ref = rng.uniform(*t_ref_range)
    return KineticBox.rigid(Box(x, x + w, y, y + h), vx, vy, t_ref)


def random_object(
    rng: random.Random,
    oid: int,
    t_ref: float = 0.0,
    space: float = 1000.0,
    max_side: float = 10.0,
    max_speed: float = 3.0,
) -> MovingObject:
    """A random moving object with the given id and reference time."""
    x = rng.uniform(0, space)
    y = rng.uniform(0, space)
    side = rng.uniform(1.0, max_side)
    vx = rng.uniform(-max_speed, max_speed)
    vy = rng.uniform(-max_speed, max_speed)
    return MovingObject(oid, Box(x, x + side, y, y + side), vx, vy, t_ref)


def random_objects(
    seed: int,
    n: int,
    id_offset: int = 0,
    t_ref: float = 0.0,
    **kwargs,
) -> List[MovingObject]:
    """``n`` random objects with consecutive ids from ``id_offset``."""
    rng = random.Random(seed)
    return [random_object(rng, id_offset + i, t_ref, **kwargs) for i in range(n)]


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def sanitized(monkeypatch: pytest.MonkeyPatch) -> None:
    """Force the invariant sanitizer on for every engine built in a test.

    Sets ``REPRO_SANITIZE=1`` so any :class:`repro.core.JoinConfig`
    constructed inside the test runs the :mod:`repro.check` sanitizer
    after every build/tick/update.
    """
    monkeypatch.setenv("REPRO_SANITIZE", "1")
