"""CLI smoke and behaviour tests (all through the public entry point)."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_distribution(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--distribution", "spiral"])


class TestGenerate:
    def test_summary_fields(self):
        code, text = run_cli("generate", "--objects", "50", "--seed", "3")
        assert code == 0
        assert "objects      : 50 per set" in text
        assert "uniform" in text

    def test_battlefield_centroids_split(self):
        _code, text = run_cli(
            "generate", "--objects", "200", "--distribution", "battlefield"
        )
        lines = dict(
            line.split(":") for line in text.strip().splitlines() if ":" in line
        )
        a_x = float(lines["A centroid x "])
        b_x = float(lines["B centroid x "])
        assert a_x < 300 < 700 < b_x


class TestRun:
    def test_run_mtb(self):
        code, text = run_cli(
            "run", "--algorithm", "mtb", "--objects", "150",
            "--tm", "10", "--steps", "5",
        )
        assert code == 0
        assert "initial join" in text
        assert "per update" in text
        assert text.count("t=") == 5

    def test_run_tc(self):
        code, text = run_cli(
            "run", "--algorithm", "tc", "--objects", "100",
            "--tm", "10", "--steps", "3",
        )
        assert code == 0
        assert "current pairs" in text


class TestCompare:
    def test_compare_table(self):
        code, text = run_cli(
            "compare", "--objects", "120", "--tm", "10",
            "--algorithms", "tc,mtb", "--steps", "4",
        )
        assert code == 0
        lines = [l for l in text.splitlines() if l.strip()]
        assert lines[0].split()[:2] == ["algorithm", "init"]
        assert any(l.strip().startswith("tc") for l in lines)
        assert any(l.strip().startswith("mtb") for l in lines)


class TestScenarioPersistence:
    def test_generate_save_then_run_from_file(self, tmp_path):
        path = str(tmp_path / "scenario.json")
        code, text = run_cli(
            "generate", "--objects", "60", "--seed", "5", "--save", path
        )
        assert code == 0
        assert path in text
        code, text = run_cli(
            "run", "--scenario", path, "--algorithm", "mtb",
            "--tm", "10", "--steps", "3",
        )
        assert code == 0
        assert "per update" in text

    def test_saved_scenario_is_deterministic_input(self, tmp_path):
        path = str(tmp_path / "s.json")
        run_cli("generate", "--objects", "40", "--seed", "9", "--save", path)
        _code, text1 = run_cli("compare", "--scenario", path,
                               "--algorithms", "mtb", "--tm", "10", "--steps", "2")
        _code, text2 = run_cli("compare", "--scenario", path,
                               "--algorithms", "mtb", "--tm", "10", "--steps", "2")

        def counts(text):
            # Drop the wall-clock column; everything else is exact.
            return [line.split()[:-1] for line in text.splitlines() if line]

        assert counts(text1) == counts(text2)


class TestShow:
    def test_renders_frames(self):
        code, text = run_cli(
            "show", "--objects", "80", "--tm", "10",
            "--steps", "2", "--width", "40", "--height", "8",
        )
        assert code == 0
        assert text.count("--- t=") == 3  # t=0 plus 2 steps
        assert "dataset A/B" in text

    def test_road_distribution_renders(self):
        code, text = run_cli(
            "show", "--objects", "60", "--distribution", "road",
            "--tm", "10", "--steps", "1", "--width", "30", "--height", "6",
        )
        assert code == 0
        assert "a" in text or "b" in text


class TestStats:
    def test_insert_built(self):
        code, text = run_cli("stats", "--objects", "200")
        assert code == 0
        assert "insert-built" in text
        assert "objects        : 200" in text

    def test_bulk_loaded(self):
        code, text = run_cli("stats", "--objects", "200", "--bulk-load")
        assert code == 0
        assert "bulk-loaded" in text
