"""ASCII renderer tests."""

import pytest

from repro.geometry import Box
from repro.objects import MovingObject
from repro.viz import render_frame, render_legend


def obj(oid, x, y, vx=0.0, vy=0.0):
    return MovingObject(oid, Box(x, x + 1, y, y + 1), vx, vy, 0.0)


class TestRenderFrame:
    def test_dimensions(self):
        frame = render_frame([obj(1, 10, 10)], [], 0.0, 100.0, width=30, height=8)
        lines = frame.splitlines()
        assert len(lines) == 8
        assert all(len(line) == 30 for line in lines)

    def test_symbols(self):
        frame = render_frame(
            [obj(1, 10, 50)], [obj(2, 90, 50)], 0.0, 100.0, width=10, height=3
        )
        assert "a" in frame
        assert "b" in frame

    def test_shared_cell(self):
        frame = render_frame(
            [obj(1, 50, 50)], [obj(2, 50, 50)], 0.0, 100.0, width=5, height=5
        )
        assert "#" in frame

    def test_highlighting(self):
        frame = render_frame(
            [obj(1, 10, 50)], [obj(2, 90, 50)], 0.0, 100.0,
            width=20, height=3, pairs={(1, 2)},
        )
        assert "A" in frame
        assert "B" in frame
        assert "a" not in frame.replace("A", "")

    def test_motion_changes_frame(self):
        moving = [obj(1, 10, 50, vx=10.0)]
        f0 = render_frame(moving, [], 0.0, 100.0, width=20, height=3)
        f5 = render_frame(moving, [], 5.0, 100.0, width=20, height=3)
        assert f0 != f5

    def test_out_of_domain_clamped(self):
        frame = render_frame(
            [obj(1, 500, 500)], [], 0.0, 100.0, width=10, height=4
        )
        assert "a" in frame  # clamped to the edge, not lost

    def test_orientation_y_up(self):
        top = render_frame([obj(1, 50, 95)], [], 0.0, 100.0, width=9, height=3)
        assert "a" in top.splitlines()[0]
        bottom = render_frame([obj(1, 50, 2)], [], 0.0, 100.0, width=9, height=3)
        assert "a" in bottom.splitlines()[-1]

    def test_validation(self):
        with pytest.raises(ValueError):
            render_frame([], [], 0.0, 100.0, width=1, height=5)

    def test_legend(self):
        assert "dataset A/B" in render_legend()
