"""Exact-shape predicates and the refinement pipeline."""

import math
import random

import pytest

from repro.geometry import Box
from repro.objects import MovingObject
from repro.refine import Circle, ConvexPolygon, Sector, refine_pairs


class TestCircle:
    def test_circle_circle(self):
        assert Circle(0, 0, 5).intersects(Circle(9.99, 0, 5))
        assert not Circle(0, 0, 5).intersects(Circle(10.01, 0, 5))

    def test_touching_counts(self):
        assert Circle(0, 0, 5).intersects(Circle(10, 0, 5))

    def test_containment_counts(self):
        assert Circle(0, 0, 10).intersects(Circle(1, 1, 0.5))

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Circle(0, 0, -1)

    def test_mbr(self):
        assert Circle(2, 3, 1).mbr() == Box(1, 3, 2, 4)

    def test_translated(self):
        moved = Circle(0, 0, 2).translated(5, -1)
        assert (moved.cx, moved.cy, moved.r) == (5, -1, 2)


class TestPolygon:
    def test_rectangle_factory(self):
        poly = ConvexPolygon.rectangle(Box(0, 2, 0, 1))
        assert poly.mbr() == Box(0, 2, 0, 1)

    def test_needs_three_vertices(self):
        with pytest.raises(ValueError):
            ConvexPolygon([(0, 0), (1, 1)])

    def test_non_convex_rejected(self):
        with pytest.raises(ValueError):
            ConvexPolygon([(0, 0), (4, 0), (1, 1), (4, 4)])

    def test_clockwise_rejected(self):
        with pytest.raises(ValueError):
            ConvexPolygon([(0, 0), (0, 1), (1, 1), (1, 0)])

    def test_polygon_polygon_sat(self):
        a = ConvexPolygon.rectangle(Box(0, 2, 0, 2))
        b = ConvexPolygon.rectangle(Box(1, 3, 1, 3))
        c = ConvexPolygon.rectangle(Box(5, 6, 5, 6))
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_rotated_squares(self):
        diamond = ConvexPolygon([(2, 0), (4, 2), (2, 4), (0, 2)])
        square = ConvexPolygon.rectangle(Box(3, 5, 3, 5))
        # Diamond's top-right edge passes through (3,3)… touching.
        assert diamond.intersects(square)
        far = ConvexPolygon.rectangle(Box(4.1, 5, 4.1, 5))
        assert not diamond.intersects(far)

    def test_circle_polygon(self):
        rect = ConvexPolygon.rectangle(Box(4, 8, -1, 1))
        assert Circle(0, 0, 5).intersects(rect)
        assert rect.intersects(Circle(0, 0, 5))  # symmetric dispatch
        assert not Circle(0, 0, 3.9).intersects(rect)

    def test_circle_inside_polygon(self):
        rect = ConvexPolygon.rectangle(Box(-10, 10, -10, 10))
        assert Circle(0, 0, 1).intersects(rect)

    def test_matches_sampling_fuzz(self):
        """SAT verdicts agree with dense point sampling (one-sided:
        sampling can only prove intersection)."""
        rng = random.Random(77)
        for _ in range(100):
            ax, ay = rng.uniform(-5, 5), rng.uniform(-5, 5)
            bx, by = rng.uniform(-5, 5), rng.uniform(-5, 5)
            a = ConvexPolygon.rectangle(Box(ax, ax + 3, ay, ay + 2))
            b = ConvexPolygon([(bx, by), (bx + 2, by + 1), (bx + 1, by + 3)])
            verdict = a.intersects(b)
            sampled_hit = False
            for i in range(15):
                for j in range(15):
                    px = bx + (i / 14) * 2
                    py = by + (j / 14) * 3
                    from repro.refine.shapes import _point_polygon_distance

                    if (
                        _point_polygon_distance(px, py, b) == 0.0
                        and _point_polygon_distance(px, py, a) == 0.0
                    ):
                        sampled_hit = True
            if sampled_hit:
                assert verdict


class TestSector:
    def test_axis_aligned_hits(self):
        sector = Sector(0, 0, 10, 0.0, math.pi / 6)
        assert sector.intersects(ConvexPolygon.rectangle(Box(8, 9, -0.5, 0.5)))
        assert not sector.intersects(ConvexPolygon.rectangle(Box(-5, -4, -0.5, 0.5)))
        assert not sector.intersects(ConvexPolygon.rectangle(Box(3, 4, 5, 6)))

    def test_circle_target(self):
        sector = Sector(0, 0, 10, math.pi / 2, math.pi / 4)  # aims +y
        assert sector.intersects(Circle(0, 8, 1))
        assert not sector.intersects(Circle(0, -8, 1))

    def test_conservative_near_arc(self):
        """The polygonal sector circumscribes the true arc: anything
        within the true radius along the heading must be admitted."""
        sector = Sector(0, 0, 10, 0.0, math.pi / 3, arc_segments=4)
        assert sector.intersects(Circle(10.0, 0, 1e-9))

    def test_validation(self):
        with pytest.raises(ValueError):
            Sector(0, 0, -1, 0, 1)
        with pytest.raises(ValueError):
            Sector(0, 0, 1, 0, math.pi)  # non-convex
        with pytest.raises(ValueError):
            Sector(0, 0, 1, 0, 0.5, arc_segments=0)

    def test_translated(self):
        sector = Sector(0, 0, 5, 0.0, math.pi / 4)
        moved = sector.translated(10, 2)
        assert moved.intersects(Circle(14, 2, 0.5))
        assert not moved.intersects(Circle(4, 2, 0.5))


class TestRefinePairs:
    def test_filters_mbr_false_positives(self):
        # Two circles whose MBRs overlap at the corners but whose disks
        # do not touch.
        a = MovingObject(1, Box(0, 10, 0, 10), 0, 0, 0.0)
        b = MovingObject(100, Box(8.6, 18.6, 8.6, 18.6), 0, 0, 0.0)
        shapes_a = {1: Circle(0, 0, 5)}
        shapes_b = {100: Circle(0, 0, 5)}
        assert a.mbr_at(0.0).intersects(b.mbr_at(0.0))
        survivors = refine_pairs(
            [(1, 100)], {1: a}, {100: b}, shapes_a, shapes_b, 0.0
        )
        assert survivors == []

    def test_keeps_true_hits(self):
        a = MovingObject(1, Box(0, 10, 0, 10), 0, 0, 0.0)
        b = MovingObject(100, Box(6, 16, 0, 10), 0, 0, 0.0)
        survivors = refine_pairs(
            [(1, 100)], {1: a}, {100: b},
            {1: Circle(0, 0, 5)}, {100: Circle(0, 0, 5)}, 0.0,
        )
        assert survivors == [(1, 100)]

    def test_defaults_to_mbr_rectangles(self):
        a = MovingObject(1, Box(0, 2, 0, 2), 1, 0, 0.0)
        b = MovingObject(100, Box(3, 5, 0, 2), 0, 0, 0.0)
        # At t=2 the MBRs intersect; no shapes registered.
        survivors = refine_pairs([(1, 100)], {1: a}, {100: b}, {}, {}, 2.0)
        assert survivors == [(1, 100)]

    def test_moving_objects_refined_at_time(self):
        a = MovingObject(1, Box(0, 10, 0, 10), 1, 0, 0.0)
        b = MovingObject(100, Box(20, 30, 0, 10), 0, 0, 0.0)
        shapes = ({1: Circle(0, 0, 5)}, {100: Circle(0, 0, 5)})
        assert refine_pairs([(1, 100)], {1: a}, {100: b}, *shapes, 5.0) == []
        assert refine_pairs([(1, 100)], {1: a}, {100: b}, *shapes, 15.0) == [(1, 100)]
