"""The two-step continuous join engine against a shape-level oracle."""

import math

import numpy as np
import pytest

from repro.core import JoinConfig
from repro.geometry import Box
from repro.objects import MovingObject
from repro.refine import Circle, Sector, TwoStepJoinEngine
from repro.refine.shapes import ConvexPolygon


def make_disks(n, seed, radius=6.0, space=300.0, t_m=10.0):
    """Objects whose true shape is a disk inscribed in their MBR."""
    rng = np.random.default_rng(seed)
    objects, shapes = [], {}
    for i in range(n):
        x, y = rng.uniform(radius, space - radius, size=2)
        angle = rng.uniform(0, 2 * math.pi)
        speed = rng.uniform(0.5, 2.0)
        oid = i if seed % 2 == 0 else 100000 + i
        objects.append(
            MovingObject(
                oid,
                Box(x - radius, x + radius, y - radius, y + radius),
                speed * math.cos(angle), speed * math.sin(angle), 0.0,
            )
        )
        shapes[oid] = Circle(0.0, 0.0, radius)
    return objects, shapes


def disk_oracle(engine, t, radius=6.0):
    pairs = set()
    for a_oid, a in engine.filter_engine.objects_a.items():
        ax, ay = a.mbr_at(t).center
        for b_oid, b in engine.filter_engine.objects_b.items():
            bx, by = b.mbr_at(t).center
            if (ax - bx) ** 2 + (ay - by) ** 2 <= (2 * radius) ** 2:
                pairs.add((a_oid, b_oid))
    return pairs


class TestTwoStepEngine:
    def build(self):
        objs_a, shapes_a = make_disks(40, seed=2)
        objs_b, shapes_b = make_disks(40, seed=3)
        engine = TwoStepJoinEngine(
            objs_a, objs_b, shapes_a, shapes_b,
            config=JoinConfig(t_m=10.0),
        )
        engine.run_initial_join()
        return engine

    def test_exact_pairs_match_disk_oracle(self):
        engine = self.build()
        assert engine.exact_pairs_at(0.0) == disk_oracle(engine, 0.0)

    def test_exact_subset_of_filter(self):
        engine = self.build()
        assert engine.exact_pairs_at(0.0) <= engine.filter_pairs_at(0.0)

    def test_continuous_with_updates(self):
        engine = self.build()
        rng = np.random.default_rng(11)
        for t in range(1, 15):
            engine.tick(float(t))
            for obj in list(engine.filter_engine.objects_a.values())[:10]:
                pos = obj.mbr_at(float(t))
                angle = rng.uniform(0, 2 * math.pi)
                engine.apply_update(
                    MovingObject(
                        obj.oid, pos,
                        1.5 * math.cos(angle), 1.5 * math.sin(angle),
                        t_ref=float(t),
                    )
                )
            assert engine.exact_pairs_at() == disk_oracle(engine, float(t)), t

    def test_false_positive_rate(self):
        engine = self.build()
        rate = engine.false_positive_rate(0.0)
        assert 0.0 <= rate <= 1.0

    def test_unbounded_shape_rejected(self):
        objs_a, _ = make_disks(3, seed=2)
        # A circle bigger than the MBR must be rejected.
        with pytest.raises(ValueError):
            TwoStepJoinEngine(
                objs_a, [], shapes_a={objs_a[0].oid: Circle(0, 0, 100.0)}
            )

    def test_shape_for_unknown_object_rejected(self):
        objs_a, _ = make_disks(3, seed=2)
        with pytest.raises(ValueError):
            TwoStepJoinEngine(objs_a, [], shapes_a={424242: Circle(0, 0, 1.0)})

    def test_mixed_shapes(self):
        """Sectors and polygons can join disks."""
        # The sector's conservative polygon slightly circumscribes the
        # radius, so the MBR gets a small pad.
        a = MovingObject(1, Box(-10.5, 10.5, -10.5, 10.5), 0.5, 0.0, 0.0)
        b = MovingObject(2, Box(8, 28, -10, 10), 0.0, 0.0, 0.0)
        engine = TwoStepJoinEngine(
            [a], [b],
            shapes_a={1: Sector(0, 0, 10, 0.0, math.pi / 4)},
            shapes_b={2: ConvexPolygon.rectangle(Box(-10, 10, -10, 10))},
            config=JoinConfig(t_m=100.0),
        )
        engine.run_initial_join()
        # MBRs touch at t=0?  a: [-10,10], b: [8,28] → overlap; sector
        # points right and reaches x=10 < 8?  apex at 0, radius 10 → yes
        # reaches into b's rectangle (starts at x=8).
        assert engine.exact_pairs_at(0.0) == {(1, 2)}
