"""Property suite: the delta contract under randomized workloads.

Two layers.  The engine-level properties draw whole workloads (size,
seeds, kernels on/off) and check the incremental-view identity the API
promises subscribers: *applying ``deltas(t)`` to the previous
materialized view yields the store at t* — plus append-only,
tick-monotone streams.  The ledger-level properties draw raw record
sequences directly, so shrinking lands on a minimal add/remove pattern
rather than a 60-object scenario.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ContinuousJoinEngine, JoinConfig
from repro.deltas import DeltaLedger, DeltaView, fold_events

from .conftest import T_M, delta_batches, delta_workload

# ----------------------------------------------------------------------
# Engine level: few examples, whole runs
# ----------------------------------------------------------------------
engine_runs = settings(max_examples=8, deadline=None)


@engine_runs
@given(
    n=st.sampled_from([30, 45, 60]),
    seed=st.integers(min_value=0, max_value=40),
    use_kernels=st.booleans(),
)
def test_deltas_advance_the_previous_view_to_the_store(n, seed, use_kernels):
    """view(t-) ⊕ deltas(t) == store(t), at every tick of a random run."""
    scenario = delta_workload(n=n, seed=seed)
    engine = ContinuousJoinEngine(
        scenario.set_a,
        scenario.set_b,
        "mtb",
        JoinConfig(t_m=T_M, node_capacity=8, deltas=True, use_kernels=use_kernels),
    )
    engine.run_initial_join()
    store = engine._strategy.store
    view = DeltaView()
    for event in engine.deltas():
        view.apply(event)
    assert view.rows() == store.interval_rows()
    for t, batch in delta_batches(scenario, seed=seed + 1):
        engine.tick(t)
        for obj in batch:
            engine.apply_update(obj)
        for event in engine.deltas(t):
            view.apply(event)  # advance the *previous* view only by t's net
        assert view.rows() == store.interval_rows(), (t, seed)


@engine_runs
@given(seed=st.integers(min_value=0, max_value=40))
def test_stream_is_append_only_and_tick_monotone(seed):
    """Earlier ticks never change and never reorder: each mutation may
    only extend the tick sequence and rewrite the open tick's net."""
    scenario = delta_workload(n=40, seed=seed)
    engine = ContinuousJoinEngine(
        scenario.set_a,
        scenario.set_b,
        "mtb",
        JoinConfig(t_m=T_M, node_capacity=8, deltas=True),
    )
    engine.run_initial_join()
    seen_ticks = engine.ledger.ticks()
    closed = {}
    for t, batch in delta_batches(scenario, seed=seed + 1):
        engine.tick(t)
        closed = {u: engine.deltas(u) for u in seen_ticks}
        for obj in batch:
            engine.apply_update(obj)
            ticks = engine.ledger.ticks()
            assert ticks[: len(seen_ticks)] == seen_ticks  # append-only
            assert all(a < b for a, b in zip(ticks, ticks[1:]))  # monotone
            seen_ticks = ticks
        for u, events in closed.items():
            assert engine.deltas(u) == events, (u, t)  # closed ticks frozen


# ----------------------------------------------------------------------
# Ledger level: many examples, tiny inputs, real shrinking
# ----------------------------------------------------------------------
rows = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=3),
    st.sampled_from([0.0, 1.0, 2.5]),
    st.sampled_from([3.0, 4.0, 7.5]),
)


@settings(max_examples=200)
@given(
    script=st.lists(
        st.tuples(rows, st.integers(min_value=1, max_value=3)), max_size=12
    )
)
def test_netting_equals_the_state_diff(script):
    """Recording each row as N alternating present/absent bounces nets
    to exactly the final state transition: one event when N is odd
    (the row's presence flipped), none when N is even."""
    ledger = DeltaLedger(1.0)
    expected = {}
    for row, bounces in script:
        present = row in expected and expected[row]
        for _ in range(bounces):
            present = not present
            ledger.record(1 if present else -1, *row)
        expected[row] = present
    netted = ledger.events_at(1.0)
    flipped = sorted(row for row, present in expected.items() if present)
    assert sorted(ev[1:] for ev in netted) == [
        (1, *row) for row in flipped
    ]
    assert all(ev.tick == 1.0 for ev in netted)


@settings(max_examples=200)
@given(added=st.sets(rows, max_size=8), removed_count=st.integers(0, 8))
def test_fold_is_exact_multiset_bookkeeping(added, removed_count):
    """Adding distinct rows then removing a prefix folds to the rest."""
    ledger = DeltaLedger(0.0)
    ordered = sorted(added)
    for row in ordered:
        ledger.record(1, *row)
    ledger.advance(1.0)
    removed = ordered[: min(removed_count, len(ordered))]
    for row in removed:
        ledger.record(-1, *row)
    view = fold_events(ledger)
    survivors = {}
    for a, b, s, e in ordered[len(removed):]:
        survivors.setdefault((a, b), []).append((s, e))
    assert view.rows() == {
        key: tuple(sorted(vals)) for key, vals in survivors.items()
    }
