"""Unit contract of the ledger layer: netting, folding, prune events.

``test_replay_equivalence.py`` proves the end-to-end property; this
suite pins the pieces it stands on — per-tick netting and canonical
ordering, clock monotonicity, memoized (constant-delay) enumeration,
the exact-fold error grammar of :class:`DeltaView`, and the
satellite-6 regression: ``JoinResultStore.prune_expired`` historically
dropped intervals *silently*, which an attached ledger now reports as
``-1`` events.
"""

from __future__ import annotations

import pytest

from repro.core.result import JoinResultStore
from repro.deltas import (
    DeltaEvent,
    DeltaLedger,
    DeltaReplayError,
    DeltaView,
    fold_events,
)
from repro.geometry import TimeInterval
from repro.join import JoinTriple


def triple(a, b, start, end):
    return JoinTriple(a, b, TimeInterval(start, end))


# ----------------------------------------------------------------------
# DeltaLedger
# ----------------------------------------------------------------------
class TestLedger:
    def test_bounce_nets_to_nothing(self):
        """Within one tick, remove-then-re-add of the same row is the
        invalidation/re-probe bounce — the net state diff is empty."""
        ledger = DeltaLedger(1.0)
        ledger.record(-1, 1, 2, 0.0, 3.0)
        ledger.record(1, 1, 2, 0.0, 3.0)
        assert ledger.events_at(1.0) == ()
        assert len(ledger) == 2  # raw records are kept for diagnostics

    def test_canonical_order_removals_first(self):
        ledger = DeltaLedger(2.0)
        ledger.record(1, 9, 9, 0.0, 1.0)
        ledger.record(-1, 1, 2, 0.0, 1.0)
        ledger.record(1, 1, 3, 0.0, 1.0)
        ledger.record(-1, 5, 6, 0.0, 1.0)
        events = ledger.events_at(2.0)
        assert [ev.sign for ev in events] == [-1, -1, 1, 1]
        assert [ev.pair for ev in events] == [(1, 2), (5, 6), (1, 3), (9, 9)]

    def test_double_add_survives_netting(self):
        """A double add (store-hook bug) must reach the fold as two
        events so SC703 can catch it, not vanish in the netting."""
        ledger = DeltaLedger(0.0)
        ledger.record(1, 1, 2, 0.0, 3.0)
        ledger.record(1, 1, 2, 0.0, 3.0)
        events = ledger.events_at(0.0)
        assert len(events) == 2
        with pytest.raises(DeltaReplayError, match="duplicate add"):
            fold_events(ledger)

    def test_advance_is_monotone(self):
        ledger = DeltaLedger(3.0)
        ledger.advance(3.0)  # same tick is fine
        with pytest.raises(ValueError, match="backwards"):
            ledger.advance(2.5)

    def test_quiet_ticks_leave_no_trace(self):
        ledger = DeltaLedger(0.0)
        ledger.record(1, 1, 2, 0.0, 1.0)
        ledger.advance(1.0)  # nothing recorded at t=1
        ledger.advance(2.0)
        ledger.record(1, 3, 4, 2.0, 5.0)
        assert ledger.ticks() == (0.0, 2.0)
        assert ledger.events_at(1.0) == ()

    def test_enumeration_is_memoized_until_new_records(self):
        ledger = DeltaLedger(0.0)
        ledger.record(1, 1, 2, 0.0, 1.0)
        first = ledger.events_at(0.0)
        assert ledger.events_at(0.0) is first  # constant-delay re-read
        ledger.record(1, 3, 4, 0.0, 1.0)
        second = ledger.events_at(0.0)
        assert second is not first and len(second) == 2

    def test_events_walks_ticks_in_order(self):
        ledger = DeltaLedger(0.0)
        ledger.record(1, 1, 2, 0.0, 9.0)
        ledger.advance(1.0)
        ledger.record(-1, 1, 2, 0.0, 9.0)
        assert [(ev.tick, ev.sign) for ev in ledger.events()] == [
            (0.0, 1),
            (1.0, -1),
        ]

    def test_baseline_seeds_the_fold(self):
        """A re-armed ledger (restored shard) folds baseline ⊕ events."""
        baseline = {(1, 2): ((0.0, 3.0),)}
        ledger = DeltaLedger(5.0, baseline=baseline)
        ledger.record(-1, 1, 2, 0.0, 3.0)
        ledger.record(1, 3, 4, 5.0, 7.0)
        assert ledger.baseline_rows() == baseline
        assert fold_events(ledger).rows() == {(3, 4): ((5.0, 7.0),)}

    def test_fold_upto_stops_at_the_sample_tick(self):
        ledger = DeltaLedger(0.0)
        ledger.record(1, 1, 2, 0.0, 9.0)
        ledger.advance(1.0)
        ledger.record(-1, 1, 2, 0.0, 9.0)
        assert fold_events(ledger, upto=0.0).rows() == {(1, 2): ((0.0, 9.0),)}
        assert fold_events(ledger).rows() == {}


# ----------------------------------------------------------------------
# DeltaView
# ----------------------------------------------------------------------
class TestView:
    def test_exact_insert_remove(self):
        view = DeltaView()
        view.apply(DeltaEvent(0.0, 1, 1, 2, 0.0, 3.0))
        view.apply(DeltaEvent(0.0, 1, 1, 2, 5.0, 8.0))
        assert view.rows() == {(1, 2): ((0.0, 3.0), (5.0, 8.0))}
        view.apply(DeltaEvent(1.0, -1, 1, 2, 0.0, 3.0))
        view.apply(DeltaEvent(1.0, -1, 1, 2, 5.0, 8.0))
        assert view.rows() == {}
        assert len(view) == 0

    def test_duplicate_add_raises(self):
        view = DeltaView({(1, 2): ((0.0, 3.0),)})
        with pytest.raises(DeltaReplayError, match="duplicate add"):
            view.apply_row(1, 1, 2, 0.0, 3.0)

    def test_phantom_removal_raises(self):
        view = DeltaView()
        with pytest.raises(DeltaReplayError, match="absent"):
            view.apply_row(-1, 1, 2, 0.0, 3.0)

    def test_near_miss_removal_is_phantom(self):
        """Removal is bit-exact: a float off by one ulp does not match."""
        view = DeltaView({(1, 2): ((0.0, 3.0),)})
        with pytest.raises(DeltaReplayError, match="absent"):
            view.apply_row(-1, 1, 2, 0.0, 3.0000000001)


# ----------------------------------------------------------------------
# Store hooks, incl. the satellite-6 prune fix
# ----------------------------------------------------------------------
class TestStoreHooks:
    def build(self):
        store = JoinResultStore()
        ledger = DeltaLedger(0.0)
        store.attach_ledger(ledger)
        store.add(triple(1, 2, 0.0, 3.0))
        store.add(triple(1, 2, 5.0, 8.0))
        store.add(triple(3, 4, 1.0, 9.0))
        return store, ledger

    def test_adds_and_removals_fold_exactly(self):
        store, ledger = self.build()
        ledger.advance(1.0)
        store.remove_object(1)
        assert fold_events(ledger).rows() == store.interval_rows()
        removed = [ev for ev in ledger.events_at(1.0) if ev.sign < 0]
        assert {ev.interval for ev in removed} == {(0.0, 3.0), (5.0, 8.0)}

    def test_merge_rewrite_emits_the_row_diff(self):
        """An overlapping add rewrites the pair's list; the ledger sees
        the old rows leave and the merged row enter — state transitions,
        not operations."""
        store, ledger = self.build()
        ledger.advance(2.0)
        store.add(triple(1, 2, 2.0, 6.0))  # bridges (0,3) and (5,8)
        events = ledger.events_at(2.0)
        assert [(ev.sign, ev.interval) for ev in events] == [
            (-1, (0.0, 3.0)),
            (-1, (5.0, 8.0)),
            (1, (0.0, 8.0)),
        ]
        assert fold_events(ledger).rows() == store.interval_rows()

    def test_add_batch_records_like_add(self):
        store, ledger = self.build()
        twin_store = JoinResultStore()
        twin = DeltaLedger(0.0)
        twin_store.attach_ledger(twin)
        twin_store.add_batch(
            [1, 1, 3], [2, 2, 4], [0.0, 5.0, 1.0], [3.0, 8.0, 9.0]
        )
        assert twin_store.interval_rows() == store.interval_rows()
        assert twin.events_at(0.0) == ledger.events_at(0.0)

    def test_clear_drains_everything(self):
        store, ledger = self.build()
        ledger.advance(4.0)
        store.clear()
        assert fold_events(ledger).rows() == {}

    def test_prune_emits_removal_events(self):
        """The satellite fix: expiration is a visible ``-1`` event."""
        store, ledger = self.build()
        ledger.advance(4.0)
        dropped = store.prune_expired(4.0)
        assert dropped == 0  # (1,2) keeps (5,8); (3,4) keeps (1,9)
        pruned = ledger.events_at(4.0)
        assert [(ev.sign, ev.pair, ev.interval) for ev in pruned] == [
            (-1, (1, 2), (0.0, 3.0))
        ]
        assert fold_events(ledger).rows() == store.interval_rows()

    def test_prune_without_ledger_is_the_old_silent_bug(self):
        """Regression pin for the pre-ledger behavior: a prune the
        ledger does not see leaves the stream claiming rows the store
        has dropped — exactly the silent drift the sanitizer's SC701
        reconciliation now rejects."""
        from repro.check.sanitize import check_delta_ledger

        store, ledger = self.build()
        ledger.advance(4.0)
        store.attach_ledger(None)  # re-create the old silent prune
        store.prune_expired(4.0)
        assert (1, 2) in store  # pair survives with its later interval
        found = check_delta_ledger(store, ledger)
        assert [f.code for f in found] == ["SC701"]
        # With the ledger attached (the fix), the same prune reconciles.
        store2, ledger2 = self.build()
        ledger2.advance(4.0)
        store2.prune_expired(4.0)
        assert check_delta_ledger(store2, ledger2) == []
