"""Shared workload recipe for the delta-stream suites.

The delta tests need a workload that actually *exercises* the stream:
enough intersecting pairs that every tick nets both additions (fresh
re-probes) and removals (invalidations), so a fold that silently drops
one sign of event cannot pass by vacuity.  The parameters below give
~16 initial pairs and roughly 7-23 netted events per tick; the
``assert_busy`` helper makes the non-vacuity explicit in each suite.
"""

from __future__ import annotations

from repro.workloads import UpdateStream, make_workload

T_M = 8.0
T_END = 4.0


def delta_workload(n: int = 60, seed: int = 7):
    """A dense-enough uniform scenario (``.set_a`` / ``.set_b``)."""
    return make_workload(
        n, "uniform", max_speed=5.0, object_size_pct=3.0, t_m=T_M, seed=seed
    )


def delta_batches(scenario, seed: int = 8, t_end: float = T_END):
    """The ``(t, batch)`` update feed every engine variant replays."""
    stream = UpdateStream(scenario, seed=seed)
    return list(stream.by_timestamp(t_start=1.0, t_end=t_end))


def assert_busy(streams) -> None:
    """Guard against vacuous runs: both event signs must have fired.

    ``streams`` maps tick -> netted event tuple.  A workload tweak that
    silently produces an empty join would otherwise turn every
    replay-equivalence assertion into ``{} == {}``.
    """
    events = [ev for stream in streams.values() for ev in stream]
    assert any(ev.sign > 0 for ev in events), "workload produced no additions"
    assert any(ev.sign < 0 for ev in events), "workload produced no removals"
