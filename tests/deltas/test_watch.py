"""Subscription layer: filtered, exactly-once delivery over the stream.

``engine.watch()`` hands out poll-cursors; the contract under test is
exactly-once delivery of *closed* ticks (the open tick's net can still
change, so it is withheld unless flushed), oid/region filtering, and
the current-state queries answered through the result store's inverted
index.
"""

from __future__ import annotations

import pytest

from repro.core import ContinuousJoinEngine, JoinConfig
from repro.deltas import DeltaSubscription
from repro.geometry import Box

from .conftest import T_M, delta_batches, delta_workload

EVERYWHERE = Box(-1e9, 1e9, -1e9, 1e9)


def build():
    scenario = delta_workload()
    engine = ContinuousJoinEngine(
        scenario.set_a,
        scenario.set_b,
        "mtb",
        JoinConfig(t_m=T_M, node_capacity=8, deltas=True),
    )
    engine.run_initial_join()
    return scenario, engine


def run_ticks(scenario, engine, t_end=2.0):
    for t, batch in delta_batches(scenario, t_end=t_end):
        engine.tick(t)
        for obj in batch:
            engine.apply_update(obj)


class TestPolling:
    def test_each_closed_tick_delivered_exactly_once(self):
        scenario, engine = build()
        sub = engine.watch()
        run_ticks(scenario, engine)
        first = sub.poll()
        # Ticks 0.0 and 1.0 are closed; the open tick 2.0 is withheld.
        assert {ev.tick for ev in first} == {0.0, 1.0}
        assert first == [
            ev for t in (0.0, 1.0) for ev in engine.deltas(t)
        ]
        assert sub.poll() == []  # nothing new: exactly-once

    def test_open_tick_flushes_on_request(self):
        scenario, engine = build()
        sub = engine.watch()
        run_ticks(scenario, engine)
        sub.poll()
        flushed = sub.poll(include_open=True)
        assert flushed == list(engine.deltas(engine.now))
        assert {ev.tick for ev in flushed} == {engine.now}

    def test_open_tick_delivered_once_closed(self):
        scenario, engine = build()
        sub = engine.watch()
        run_ticks(scenario, engine, t_end=1.0)
        before = sub.poll()
        assert {ev.tick for ev in before} == {0.0}
        open_events = engine.deltas(1.0)
        engine.tick(2.0)  # closes tick 1.0
        assert sub.poll() == list(open_events)

    def test_late_subscriber_still_sees_history(self):
        """The stream is a ledger, not a live feed: a cursor opened
        after the fact replays every closed tick from t=0."""
        scenario, engine = build()
        run_ticks(scenario, engine)
        early = [ev for t in (0.0, 1.0) for ev in engine.deltas(t)]
        assert engine.watch().poll() == early


class TestFilters:
    def test_oid_filter_selects_the_pairs_touching_it(self):
        scenario, engine = build()
        run_ticks(scenario, engine)
        everything = engine.watch().poll()
        oid = everything[0].a_oid
        matched = engine.watch(oid=oid).poll()
        assert matched == [
            ev for ev in everything if oid in (ev.a_oid, ev.b_oid)
        ]
        assert matched  # non-vacuous by construction

    def test_region_filter_everywhere_matches_all(self):
        scenario, engine = build()
        run_ticks(scenario, engine)
        assert engine.watch(region=EVERYWHERE).poll() == engine.watch().poll()

    def test_region_filter_nowhere_matches_nothing(self):
        scenario, engine = build()
        run_ticks(scenario, engine)
        faraway = Box(1e6, 1e6 + 1, 1e6, 1e6 + 1)
        assert engine.watch(region=faraway).poll() == []

    def test_region_scope_resolves_at_poll_time(self):
        """The same subscription narrows with the clock: objects drift
        and the region's oid set is re-resolved on every poll."""
        scenario, engine = build()
        sub = engine.watch(region=EVERYWHERE)
        run_ticks(scenario, engine)
        scoped = engine._region_oids(EVERYWHERE)
        assert scoped  # everything is in the all-space region
        assert sub.poll() == engine.watch().poll()

    def test_current_pairs_is_the_inverted_index(self):
        scenario, engine = build()
        run_ticks(scenario, engine)
        store = engine._strategy.store
        some_pair = next(iter(store.interval_rows()))
        oid = some_pair[0]
        assert engine.watch(oid=oid).current_pairs() == store.pairs_for_object(
            oid
        )
        union = engine.watch(region=EVERYWHERE).current_pairs()
        assert union == set(store.interval_rows())


class TestApiEdges:
    def test_oid_and_region_together_rejected(self):
        _scenario, engine = build()
        with pytest.raises(ValueError, match="not both"):
            engine.watch(oid=1, region=EVERYWHERE)

    def test_region_without_resolver_rejected(self):
        with pytest.raises(ValueError, match="resolver"):
            DeltaSubscription(object(), region=EVERYWHERE)

    def test_unfiltered_current_pairs_rejected(self):
        _scenario, engine = build()
        with pytest.raises(RuntimeError, match="oid= or region="):
            engine.watch().current_pairs()
