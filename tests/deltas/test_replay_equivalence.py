"""Replay equivalence: folding the delta stream rebuilds the store.

The headline contract of the delta API.  Every engine variant drives
the same workload; at every tick we fold the netted event stream from
t=0 (plus the ledger baseline, empty here) and require the folded view
to equal the live materialized store **bit-for-bit** — same pairs, same
interval rows, same floats.  The matrix covers engine ∈ {serial,
columnar, sharded(2, 4)} × kernels on/off × a fault-injected run, and
ends each run with a prune so expiration-driven removals are part of
the folded history, not silent drift.

A second family of assertions pins *engine independence*: the netted
per-tick streams (state diffs across each tick boundary) must be
identical tuples across all variants — serial, columnar, and the
sharded merger may disagree on internal event order within a tick, but
never on the net.
"""

from __future__ import annotations

import signal

import pytest

from repro.core import ColumnarJoinEngine, ContinuousJoinEngine, JoinConfig
from repro.deltas import fold_events
from repro.par import ShardedJoinEngine

from .conftest import T_M, assert_busy, delta_batches, delta_workload


@pytest.fixture(autouse=True)
def watchdog():
    signal.alarm(300)
    yield
    signal.alarm(0)


def config(use_kernels=True, **kwargs):
    return JoinConfig(
        t_m=T_M, node_capacity=8, deltas=True, use_kernels=use_kernels, **kwargs
    )


def sample(streams, source, store, t):
    """Record tick ``t``'s netted events and assert the fold is exact."""
    streams[t] = tuple(source.events_at(t))
    assert fold_events(source, upto=t).rows() == store.interval_rows(), t


def drive_serial(use_kernels=True, algorithm="mtb"):
    """Serial engine over the shared feed; returns tick -> netted events."""
    scenario = delta_workload()
    engine = ContinuousJoinEngine(
        scenario.set_a, scenario.set_b, algorithm, config(use_kernels)
    )
    engine.run_initial_join()
    store = engine._strategy.store
    streams = {}
    sample(streams, engine.ledger, store, engine.now)
    batches = delta_batches(scenario)
    last = batches[-1][0]
    for t, batch in batches:
        engine.tick(t)
        for obj in batch:
            engine.apply_update(obj)
        if t == last:
            engine.prune_expired()
        sample(streams, engine.ledger, store, t)
    assert_busy(streams)
    return streams


def drive_columnar(use_kernels=True):
    scenario = delta_workload()
    engine = ColumnarJoinEngine(
        scenario.set_a, scenario.set_b, "mtb", config(use_kernels)
    )
    engine.run_initial_join()
    streams = {}
    sample(streams, engine.ledger, engine.store, engine.now)
    batches = delta_batches(scenario)
    last = batches[-1][0]
    for t, batch in batches:
        engine.tick(t)
        engine.apply_updates(batch)
        if t == last:
            engine.prune_expired()
        sample(streams, engine.ledger, engine.store, t)
    assert_busy(streams)
    return streams


def drive_sharded(shards=4, workers=0, faults=None, **config_kwargs):
    scenario = delta_workload()
    if faults is not None:
        config_kwargs.setdefault("shard_timeout", 10.0)
        config_kwargs.setdefault("shard_heartbeat", 0.01)
    engine = ShardedJoinEngine(
        scenario.set_a,
        scenario.set_b,
        "mtb",
        config(faults=faults, **config_kwargs),
        shards=shards,
        workers=workers,
    )
    try:
        engine.run_initial_join()
        streams = {}
        sample(streams, engine._merger, engine.merged_store(), engine.now)
        batches = delta_batches(scenario)
        last = batches[-1][0]
        for t, batch in batches:
            engine.step(t, batch)
            if t == last:
                engine.prune_expired()
            sample(streams, engine._merger, engine.merged_store(), t)
        engine.validate()
        assert_busy(streams)
        stats = engine.fault_stats()
    finally:
        engine.close()
    return streams, stats


# ----------------------------------------------------------------------
# Fold == store, per variant
# ----------------------------------------------------------------------
class TestFoldMatchesStore:
    @pytest.mark.parametrize("use_kernels", [True, False])
    def test_serial(self, use_kernels):
        drive_serial(use_kernels)

    @pytest.mark.parametrize("algorithm", ["naive", "tc", "mtb"])
    def test_serial_algorithms(self, algorithm):
        drive_serial(algorithm=algorithm)

    @pytest.mark.parametrize("use_kernels", [True, False])
    def test_columnar(self, use_kernels):
        drive_columnar(use_kernels)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded(self, shards):
        drive_sharded(shards=shards, workers=0)

    def test_sharded_with_workers(self):
        drive_sharded(shards=4, workers=2)


# ----------------------------------------------------------------------
# Engine independence: identical netted streams
# ----------------------------------------------------------------------
class TestStreamEquality:
    def test_serial_vs_columnar(self):
        assert drive_serial() == drive_columnar()

    def test_kernels_do_not_change_the_stream(self):
        assert drive_serial(use_kernels=True) == drive_serial(use_kernels=False)
        assert drive_columnar(use_kernels=True) == drive_columnar(
            use_kernels=False
        )

    @pytest.mark.parametrize("shards", [2, 4])
    def test_serial_vs_sharded(self, shards):
        sharded, _stats = drive_sharded(shards=shards, workers=0)
        assert drive_serial() == sharded


# ----------------------------------------------------------------------
# Fault-injected run: recovery must not bend the stream
# ----------------------------------------------------------------------
class TestFaultedReplay:
    def test_kill_with_checkpoints_folds_bit_exact(self):
        """A worker dies mid-run after checkpoints exist; the restored
        shard re-arms its ledger from the checkpoint baseline and the
        merged stream still folds onto the store at every tick."""
        sharded, stats = drive_sharded(
            shards=4,
            workers=2,
            faults="kill:op=ops",
            checkpoint_interval=2,
            sanitize=True,
        )
        assert stats.worker_deaths >= 1
        assert stats.recoveries >= 1
        assert drive_serial() == sharded


# ----------------------------------------------------------------------
# API edges
# ----------------------------------------------------------------------
class TestApiEdges:
    def test_constant_delay_enumeration(self):
        """Re-enumerating a tick hands back the same materialized tuple
        (no recomputation), and iteration yields DeltaEvent records."""
        scenario = delta_workload()
        engine = ContinuousJoinEngine(
            scenario.set_a, scenario.set_b, "mtb", config()
        )
        engine.run_initial_join()
        first = engine.deltas()
        assert first and engine.deltas() is first
        assert all(ev.tick == engine.now and ev.sign == 1 for ev in first)

    def test_deltas_off_raises(self):
        scenario = delta_workload(n=10)
        engine = ContinuousJoinEngine(
            scenario.set_a, scenario.set_b, "mtb", JoinConfig(t_m=T_M)
        )
        with pytest.raises(RuntimeError, match="deltas=True"):
            engine.deltas()
        with pytest.raises(RuntimeError, match="deltas=True"):
            engine.watch(oid=0)

    def test_storeless_algorithm_rejected(self):
        """ETP keeps no interval store, so there is nothing to ledger."""
        scenario = delta_workload(n=10)
        with pytest.raises(ValueError, match="no interval store"):
            ContinuousJoinEngine(scenario.set_a, scenario.set_b, "etp", config())
